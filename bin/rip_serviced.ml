(* rip_serviced: the persistent solve daemon.

     rip_serviced --socket /tmp/rip.sock --jobs 4
     rip_serviced --port 7177 --cache-capacity 1024
     rip_serviced --faults 'seed=7,delay:p=0.3:ms=20,kill:p=0.1'   # chaos

   Speaks the Rip_service.Protocol line protocol (SOLVE/STATS/PING/
   SHUTDOWN) over a Unix-domain or TCP socket; see the README's "Running
   the service" section for the grammar and a socat session.  Runs until
   a SHUTDOWN frame or SIGINT/SIGTERM.

   Fault injection (--faults, or the RIP_FAULTS environment variable;
   the flag wins) is for chaos testing only and is off by default. *)

module Server = Rip_service.Server
module Faults = Rip_service.Faults
module Trace = Rip_obs.Trace
module Wide_event = Rip_obs.Wide_event

let process = Rip_tech.Process.default_180nm

let resolve_faults = function
  | Some spec -> Result.map Option.some (Faults.parse_spec spec)
  | None -> Faults.of_env ()

let rec ensure_dir dir =
  if
    String.equal dir "" || String.equal dir "." || String.equal dir "/"
    || Sys.file_exists dir
  then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A sink path ending in '/' (or naming an existing directory) gets a
   per-shard file inside it — so a router supervisor can pass one
   --shard-arg=--trace-out --shard-arg=DIR/ to every shard without the
   dumps clobbering each other. *)
let per_shard_sink ~shard_id ~default_name path =
  let is_dir =
    (Sys.file_exists path && Sys.is_directory path)
    || String.length path > 0
       && path.[String.length path - 1] = '/'
  in
  if is_dir then begin
    ensure_dir path;
    Filename.concat path (default_name shard_id)
  end
  else begin
    ensure_dir (Filename.dirname path);
    path
  end

let serve socket_path port host shard_id jobs cache_capacity queue_depth
    high_water max_frame_bytes faults_spec trace_out wide_events
    wide_sample_ratio wide_latency_threshold_ms journal_dir =
  if queue_depth < 1 then begin
    prerr_endline "rip_serviced: --queue-depth must be at least 1";
    2
  end
  else if high_water < 1 || high_water > queue_depth then begin
    Printf.eprintf
      "rip_serviced: --high-water %d must be between 1 and --queue-depth %d\n"
      high_water queue_depth;
    2
  end
  else if not (Rip_service.Protocol.valid_shard_id shard_id) then begin
    Printf.eprintf
      "rip_serviced: --shard-id %S must be a non-empty token over \
       [A-Za-z0-9._-]\n"
      shard_id;
    2
  end
  else if cache_capacity < 0 then begin
    prerr_endline "rip_serviced: --cache-capacity must not be negative";
    2
  end
  else if max_frame_bytes < 1 then begin
    prerr_endline "rip_serviced: --max-frame-bytes must be positive";
    2
  end
  else begin
    (* The journal lives in a per-shard subdirectory so several shards
       can share one --journal-dir without interleaving their logs, and
       a shard restarted with the same id finds exactly its own
       segments. *)
    let journal_dir =
      Option.map (fun dir -> Filename.concat dir shard_id) journal_dir
    in
    let journal_error =
      match journal_dir with
      | None -> None
      | Some dir -> (
          match Rip_service.Journal.prepare_dir dir with
          | Ok () -> None
          | Error e -> Some e)
    in
    match (journal_error, resolve_faults faults_spec) with
    | Some e, _ ->
        Printf.eprintf "rip_serviced: --journal-dir: %s\n" e;
        2
    | None, Error e ->
        Printf.eprintf "rip_serviced: %s\n" e;
        2
    | None, Ok faults ->
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        (* One tracer for the daemon's lifetime; installed globally so
           engine batch spans land in the same timeline as the service
           spans.  Scoped by shard id and pid, so span ids and merged
           timelines stay collision-free across shards.  Dumped once,
           at shutdown. *)
        let tracer =
          Option.map
            (fun _ ->
              Trace.create ~scope:shard_id ~pid:(Unix.getpid ()) ())
            trace_out
        in
        if Option.is_some tracer then Trace.set_global tracer;
        let spool =
          Option.map
            (fun path ->
              let path =
                per_shard_sink ~shard_id
                  ~default_name:(Printf.sprintf "wide-%s.jsonl")
                  path
              in
              Wide_event.create
                ~sampler:
                  {
                    Wide_event.latency_threshold =
                      wide_latency_threshold_ms /. 1000.0;
                    sample_ratio = wide_sample_ratio;
                  }
                path)
            wide_events
        in
        let config =
          {
            Server.default_config with
            shard_id;
            jobs;
            queue_depth;
            high_water;
            cache_capacity;
            max_frame_bytes;
            faults;
            tracer;
            spool;
            journal_dir;
          }
        in
        let server = Server.create ~config process in
        (match Server.journal_recovery server with
        | None -> ()
        | Some r ->
            Printf.printf
              "rip_serviced[%s]: journal replayed %d records from %d \
               segment(s) (%d CRC-rejected, %d torn bytes truncated, %s \
               shutdown)\n\
               %!"
              shard_id (List.length r.Rip_service.Journal.entries)
              r.Rip_service.Journal.segments
              r.Rip_service.Journal.crc_rejected
              r.Rip_service.Journal.torn_bytes
              (if r.Rip_service.Journal.clean then "clean" else "unclean"));
        (* Flush the journal right at the signal, not only at the end of
           the clean-shutdown path: if the supervisor's grace window
           expires while connection threads are still draining, the
           SIGKILL then lands on an already-synced log. *)
        let stop _ =
          Server.journal_flush server;
          Server.request_shutdown server
        in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        let listen_fd, endpoint =
          match port with
          | Some port ->
              (Server.listen_tcp ~host ~port, Printf.sprintf "%s:%d" host port)
          | None -> (Server.listen_unix socket_path, socket_path)
        in
        Printf.printf
          "rip_serviced[%s]: listening on %s (jobs %s, cache %d entries, \
           queue depth %d, high water %d%s)\n\
           %!"
          shard_id endpoint
          (match jobs with Some j -> string_of_int j | None -> "auto")
          cache_capacity queue_depth high_water
          (if Option.is_some faults then ", FAULT INJECTION ON" else "");
        Server.run server listen_fd;
        (* Leave no stale socket file behind on a clean shutdown. *)
        (if port = None && Sys.file_exists socket_path then
           try Unix.unlink socket_path with Unix.Unix_error _ -> ());
        (match (tracer, trace_out) with
        | Some tr, Some path ->
            let path =
              per_shard_sink ~shard_id
                ~default_name:(Printf.sprintf "trace-%s.json")
                path
            in
            Trace.dump_to_file tr path;
            Printf.printf "rip_serviced: wrote %d trace spans to %s\n%!"
              (Trace.span_count tr) path
        | _ -> ());
        (match spool with
        | Some spool ->
            Printf.printf
              "rip_serviced: wide events: %d written, %d sampled out (%s)\n%!"
              (Wide_event.written spool)
              (Wide_event.sampled_out spool)
              (Wide_event.path spool);
            Wide_event.close spool
        | None -> ());
        Printf.printf "rip_serviced: shut down\n%!";
        0
  end

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_serviced.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (ignored with --port).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP instead of a Unix socket.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for --port.")

let shard_id =
  Arg.(
    value
    & opt string Rip_service.Server.default_config.shard_id
    & info [ "shard-id" ] ~docv:"ID"
        ~doc:"Shard identity reported in STATS and HEALTH frames — how a \
              routing front end (rip_routerd) tells shards apart.  A \
              non-empty token over [A-Za-z0-9._-].")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains of the solve pool (default: the machine's \
              recommended domain count; 1 solves inline in the connection \
              thread).")

let cache_capacity =
  Arg.(
    value & opt int Rip_service.Server.default_config.cache_capacity
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Solve-cache capacity in entries (0 disables caching).")

let queue_depth =
  Arg.(
    value & opt int Rip_service.Server.default_config.queue_depth
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Maximum in-flight solves before new requests are rejected \
              with BUSY.")

let high_water =
  Arg.(
    value & opt int Rip_service.Server.default_config.high_water
    & info [ "high-water" ] ~docv:"N"
        ~doc:"In-flight solves beyond which new requests are answered from \
              the analytic fallback tier (DEGRADED overload) instead of \
              queueing a full solve.  Must not exceed --queue-depth.")

let max_frame_bytes =
  Arg.(
    value & opt int Rip_service.Server.default_config.max_frame_bytes
    & info [ "max-frame-bytes" ] ~docv:"BYTES"
        ~doc:"Request frames larger than this are rejected with TOOBIG and \
              the connection closed.")

let faults_spec =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"Deterministic fault injection for chaos testing, e.g. \
              'seed=7,delay:p=0.5:ms=20,kill:p=0.1,drop:p=0.2:bytes=64,\
              corrupt:p=1'.  Also read from \\$RIP_FAULTS; this flag wins. \
              Off by default.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record per-request trace spans (admission, cache lookup, queue \
              wait, solve, solver phases) and write them as Chrome-trace \
              JSON to $(docv) at shutdown; open in chrome://tracing or \
              Perfetto, or merge across processes with rip_trace merge.  A \
              $(docv) ending in '/' (or naming a directory) writes \
              trace-<shard-id>.json inside it.  Requests carrying a TRACE \
              header keep their trace id on every span.  Off by default — \
              the span hooks are nops.")

let wide_events =
  Arg.(
    value
    & opt (some string) None
    & info [ "wide-events" ] ~docv:"FILE"
        ~doc:"Emit one structured wide-event JSON line per SOLVE to this \
              bounded spool, tail-sampled: errors, timeouts, degraded and \
              hedge/failover-involved requests are always kept, the rest \
              pass a latency threshold or a probabilistic sample.  A \
              $(docv) ending in '/' writes wide-<shard-id>.jsonl inside \
              it.  Query offline with rip_trace query.")

let wide_sample_ratio =
  Arg.(
    value
    & opt float Rip_obs.Wide_event.default_sampler.sample_ratio
    & info [ "wide-sample-ratio" ] ~docv:"R"
        ~doc:"Fraction of uninteresting (fast, successful) wide events kept \
              by the tail sampler, in [0,1]; 1 keeps everything.")

let wide_latency_threshold_ms =
  Arg.(
    value
    & opt float
        (Rip_obs.Wide_event.default_sampler.latency_threshold *. 1000.0)
    & info [ "wide-latency-threshold-ms" ] ~docv:"MS"
        ~doc:"Requests at least this slow are always kept by the tail \
              sampler, whatever their outcome.")

let journal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:"Crash-durable solve journal: every verified cache insert is \
              appended to an fsync-batched log under \
              $(docv)/<shard-id>/ and replayed at the next boot to \
              pre-warm the cache (the STATS cache_replayed counter).  The \
              directory is created if missing.  Off by default — the cache \
              is purely in-memory.")

let main =
  Cmd.v
    (Cmd.info "rip_serviced" ~version:"1.0.0"
       ~doc:"Persistent repeater-insertion solve service with a canonical-form \
             result cache, deadlines and graceful degradation")
    Term.(
      const serve $ socket_path $ port $ host $ shard_id $ jobs
      $ cache_capacity $ queue_depth $ high_water $ max_frame_bytes
      $ faults_spec $ trace_out $ wide_events $ wide_sample_ratio
      $ wide_latency_threshold_ms $ journal_dir)

let () = exit (Cmd.eval' main)
