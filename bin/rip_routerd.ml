(* rip_routerd: the sharded-cluster front end.

     rip_routerd --socket /tmp/rip_router.sock --shards 4
     rip_routerd --port 7178 --shards 2 --shard-jobs 2
     rip_routerd --socket r.sock --attach s0=/tmp/a.sock --attach s1=/tmp/b.sock

   Owns the listening socket, spawns and supervises N rip_serviced
   shard processes on Unix sockets (or attaches to externally-managed
   ones with --attach), routes SOLVE requests by consistent-hashing the
   net's canonical digest, and admits them by per-shard price (see
   DESIGN.md §6d).  Speaks the same line protocol as rip_serviced, so
   every existing client — rip_loadgen included — works unchanged
   against a cluster. *)

module Router = Rip_router.Router
module Supervisor = Rip_router.Supervisor
module Pricing = Rip_router.Pricing
module Trace = Rip_obs.Trace
module Wide_event = Rip_obs.Wide_event

let process = Rip_tech.Process.default_180nm

let rec ensure_dir dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A PATH ending in '/' (or naming an existing directory) means "put the
   router's file inside": the same convention rip_serviced uses, so one
   --trace-out directory can collect the whole cluster's dumps. *)
let sink ~default_name path =
  let is_dir =
    (Sys.file_exists path && Sys.is_directory path)
    || (String.length path > 0 && path.[String.length path - 1] = '/')
  in
  if is_dir then begin
    ensure_dir path;
    Filename.concat path default_name
  end
  else begin
    ensure_dir (Filename.dirname path);
    path
  end

let parse_attach spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 ->
      Ok
        (String.sub spec 0 i,
         String.sub spec (i + 1) (String.length spec - i - 1))
  | _ -> Error (Printf.sprintf "bad --attach %S (want ID=SOCKET)" spec)

let shard_socket ~dir index = Filename.concat dir (Printf.sprintf "shard-%d.sock" index)

let default_serviced_exe () =
  (* Sibling of the router binary in _build/…/bin; overridable for
     installs that relocate the daemons. *)
  match Sys.getenv_opt "RIP_SERVICED" with
  | Some exe -> exe
  | None -> Filename.concat (Filename.dirname Sys.executable_name) "rip_serviced.exe"

let rec parse_attach_all = function
  | [] -> Ok []
  | spec :: rest ->
      Result.bind (parse_attach spec) (fun pair ->
          Result.map (fun pairs -> pair :: pairs) (parse_attach_all rest))

let serve socket_path port host shards shard_dir shard_jobs shard_args attach
    pool_size poll_interval spill_price shed_price restart_backoff no_hedge
    hedge_floor_ms breaker_threshold trace_out wide_events wide_sample_ratio
    wide_latency_threshold_ms =
  match parse_attach_all attach with
  | Error e ->
      Printf.eprintf "rip_routerd: %s\n" e;
      2
  | Ok attached ->

      if shards < 0 then begin
        prerr_endline "rip_routerd: --shards must not be negative";
        2
      end
      else if shards = 0 && attached = [] then begin
        prerr_endline
          "rip_routerd: need at least one shard (--shards N or --attach)";
        2
      end
      else begin
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let exe = default_serviced_exe () in
        let dir =
          match shard_dir with
          | Some d -> d
          | None -> Filename.get_temp_dir_name ()
        in
        let jobs_args =
          match shard_jobs with
          | Some j -> [ "--jobs"; string_of_int j ]
          | None -> []
        in
        let children =
          List.init shards (fun i ->
              Supervisor.spawn ~restart_backoff ~exe
                ~extra_args:(jobs_args @ shard_args)
                ~id:(Printf.sprintf "s%d" i)
                ~socket:(shard_socket ~dir i) ())
        in
        let not_ready =
          List.filter_map
            (fun child ->
              match Supervisor.wait_ready child with
              | Ok () -> None
              | Error e -> Some e)
            children
        in
        if not_ready <> [] then begin
          List.iter (Printf.eprintf "rip_routerd: %s\n") not_ready;
          List.iter Supervisor.terminate children;
          1
        end
        else begin
          let specs =
            List.map
              (fun child ->
                {
                  Router.id = Supervisor.id child;
                  socket = Supervisor.socket child;
                  weight = 1;
                })
              children
            @ List.map
                (fun (id, socket) -> { Router.id; socket; weight = 1 })
                attached
          in
          let tracer =
            match trace_out with
            | None -> None
            | Some _ -> Some (Trace.create ~scope:"router" ~pid:(Unix.getpid ()) ())
          in
          let spool =
            match wide_events with
            | None -> None
            | Some path ->
                let sampler =
                  {
                    Wide_event.latency_threshold =
                      wide_latency_threshold_ms /. 1000.0;
                    sample_ratio = wide_sample_ratio;
                  }
                in
                Some
                  (Wide_event.create ~sampler
                     (sink ~default_name:"wide-router.jsonl" path))
          in
          let config =
            {
              Router.default_config with
              pool_size;
              poll_interval;
              spill_price;
              shed_price;
              hedge = not no_hedge;
              hedge_delay_floor = hedge_floor_ms /. 1000.0;
              breaker_threshold;
              tracer;
              spool;
            }
          in
          let router = Router.create ~config ~shards:specs process in
          let stop _ = Router.request_shutdown router in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          (* Restart dead children (after their backoff) until shutdown;
             the router's poller re-admits them to the ring once they
             answer STATS again. *)
          let supervisor_thread =
            Thread.create
              (fun () ->
                let rec watch () =
                  if not (Router.stopping router) then begin
                    List.iter
                      (fun child -> ignore (Supervisor.restart_if_due child))
                      children;
                    Thread.delay 0.2;
                    watch ()
                  end
                in
                watch ())
              ()
          in
          let listen_fd, endpoint =
            match port with
            | Some port ->
                (Router.listen_tcp ~host ~port, Printf.sprintf "%s:%d" host port)
            | None -> (Router.listen_unix socket_path, socket_path)
          in
          Printf.printf
            "rip_routerd: listening on %s (%d shards: %s; pool %d, poll \
             %.2fs, spill at %.2f, shed at %.2f, %s, breaker at %d)\n\
             %!"
            endpoint (List.length specs)
            (String.concat ", "
               (List.map (fun (s : Router.shard_spec) -> s.id) specs))
            pool_size poll_interval spill_price shed_price
            (if no_hedge then "hedging off"
             else
               Printf.sprintf "hedge floor %.0f ms" hedge_floor_ms)
            breaker_threshold;
          Router.run router listen_fd;
          Thread.join supervisor_thread;
          (match (tracer, trace_out) with
          | Some tr, Some out ->
              let path = sink ~default_name:"trace-router.json" out in
              Trace.dump_to_file tr path;
              Printf.printf "rip_routerd: wrote %d trace spans to %s\n%!"
                (Trace.span_count tr) path
          | _ -> ());
          (match spool with
          | Some spool ->
              Printf.printf
                "rip_routerd: wide events: %d written, %d sampled out (%s)\n%!"
                (Wide_event.written spool)
                (Wide_event.sampled_out spool)
                (Wide_event.path spool);
              Wide_event.close spool
          | None -> ());
          List.iter
            (Supervisor.terminate ~log:(fun line ->
                 Printf.printf "rip_routerd: %s\n%!" line))
            children;
          (if port = None && Sys.file_exists socket_path then
             try Unix.unlink socket_path with Unix.Unix_error _ -> ());
          Printf.printf "rip_routerd: shut down\n%!";
          0
        end
      end

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_routerd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (ignored with --port).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP instead of a Unix socket.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for --port.")

let shards =
  Arg.(
    value & opt int 2
    & info [ "shards" ] ~docv:"N"
        ~doc:"rip_serviced shard processes to spawn and supervise (ids s0, \
              s1, ...).  May be 0 when --attach provides the shards.")

let shard_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-dir" ] ~docv:"DIR"
        ~doc:"Directory for spawned shards' Unix sockets (default: the \
              temp directory).")

let shard_jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-jobs" ] ~docv:"N"
        ~doc:"Worker domains per spawned shard (rip_serviced --jobs).")

let shard_args =
  Arg.(
    value & opt_all string []
    & info [ "shard-arg" ] ~docv:"ARG"
        ~doc:"Extra argument passed through to every spawned rip_serviced \
              (repeatable), e.g. --shard-arg=--cache-capacity \
              --shard-arg=1024.")

let attach =
  Arg.(
    value & opt_all string []
    & info [ "attach" ] ~docv:"ID=SOCKET"
        ~doc:"Route to an externally-managed rip_serviced at $(docv) \
              instead of (or in addition to) spawned shards (repeatable).")

let pool_size =
  Arg.(
    value & opt int Rip_router.Router.default_config.pool_size
    & info [ "pool-size" ] ~docv:"N"
        ~doc:"Connections kept open per shard.")

let poll_interval =
  Arg.(
    value & opt float Rip_router.Router.default_config.poll_interval
    & info [ "poll-interval" ] ~docv:"SECONDS"
        ~doc:"Pricing / liveness tick: how often shards' STATS feed the \
              price controllers.")

let spill_price =
  Arg.(
    value & opt float Rip_router.Router.default_config.spill_price
    & info [ "spill-price" ] ~docv:"PRICE"
        ~doc:"A primary shard priced at or above this may lose the request \
              to the key's second-choice shard when that one is cheaper.")

let shed_price =
  Arg.(
    value & opt float Rip_router.Router.default_config.shed_price
    & info [ "shed-price" ] ~docv:"PRICE"
        ~doc:"Once every candidate shard is priced at or above this the \
              router answers DEGRADED (overload) from its own fallback \
              tier instead of forwarding.")

let restart_backoff =
  Arg.(
    value & opt float 1.0
    & info [ "restart-backoff" ] ~docv:"SECONDS"
        ~doc:"Minimum dead time before a crashed spawned shard is \
              restarted.  Large values keep a killed shard down — useful \
              for observing graceful degradation.")

let no_hedge =
  Arg.(
    value & flag
    & info [ "no-hedge" ]
        ~doc:"Disable hedged requests.  By default a forward still \
              unanswered after the p99-derived hedge delay is also issued \
              to the key's failover shard and the first answer wins.")

let hedge_floor_ms =
  Arg.(
    value
    & opt float (Rip_router.Router.default_config.hedge_delay_floor *. 1000.0)
    & info [ "hedge-floor-ms" ] ~docv:"MS"
        ~doc:"Lower bound on the hedge delay, so a cold or cache-hit-fast \
              forward histogram cannot hedge every request.")

let breaker_threshold =
  Arg.(
    value & opt int Rip_router.Router.default_config.breaker_threshold
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:"Consecutive transport failures that open a shard's circuit \
              breaker, removing it from the candidate set until a \
              successful poll half-opens it again.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record the router's ingress and per-forward trace spans and \
              write them as Chrome-trace JSON to $(docv) at shutdown.  \
              Forwarded frames carry a TRACE header parented on the forward \
              span, so shards run with --trace-out produce dumps that \
              rip_trace merge joins into one cross-process timeline.  A \
              $(docv) ending in '/' (or naming a directory) writes \
              trace-router.json inside it.  Off by default.")

let wide_events =
  Arg.(
    value
    & opt (some string) None
    & info [ "wide-events" ] ~docv:"FILE"
        ~doc:"Emit one structured wide-event JSON line per routed SOLVE \
              (target shard, outcome, hedge/failover/spill/breaker \
              involvement, deadline slack) to this bounded spool, \
              tail-sampled like rip_serviced's.  A $(docv) ending in '/' \
              writes wide-router.jsonl inside it.  Query offline with \
              rip_trace query.")

let wide_sample_ratio =
  Arg.(
    value
    & opt float Rip_obs.Wide_event.default_sampler.sample_ratio
    & info [ "wide-sample-ratio" ] ~docv:"R"
        ~doc:"Fraction of uninteresting (fast, successful) wide events kept \
              by the tail sampler, in [0,1]; 1 keeps everything.")

let wide_latency_threshold_ms =
  Arg.(
    value
    & opt float
        (Rip_obs.Wide_event.default_sampler.latency_threshold *. 1000.0)
    & info [ "wide-latency-threshold-ms" ] ~docv:"MS"
        ~doc:"Requests at least this slow are always kept by the tail \
              sampler, whatever their outcome.")

let main =
  Cmd.v
    (Cmd.info "rip_routerd" ~version:"1.0.0"
       ~doc:"Sharded solve-cluster front end: consistent-hash routing over \
             supervised rip_serviced shards with price-based admission")
    Term.(
      const serve $ socket_path $ port $ host $ shards $ shard_dir
      $ shard_jobs $ shard_args $ attach $ pool_size $ poll_interval
      $ spill_price $ shed_price $ restart_backoff $ no_hedge
      $ hedge_floor_ms $ breaker_threshold $ trace_out $ wide_events
      $ wide_sample_ratio $ wide_latency_threshold_ms)

let () = exit (Cmd.eval' main)
