(* rip: solve low-power repeater insertion (Problem LPRI) for net files.

     rip_cli solve NET_FILE --slack 1.3
     rip_cli solve NET_FILE --budget-ps 850 --trace
     rip_cli solve a.net b.net c.net --jobs 8
     rip_cli tau-min NET_FILE

   Several net files form one batch executed on the rip_engine domain
   pool; results print in argument order whatever the completion order. *)

module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Rip = Rip_core.Rip
module Config = Rip_core.Config
module Engine = Rip_engine.Engine
module Job = Rip_engine.Job

let process = Rip_tech.Process.default_180nm

let load path =
  match Rip_net.Net_io.parse_file path with
  | Ok net -> Ok net
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let print_solution (report : Rip.report) =
  let open Printf in
  printf "repeaters: %d\n" (Solution.count report.Rip.solution);
  List.iter
    (fun (r : Solution.repeater) ->
      printf "  %8.1f um   %6.1f u\n" r.position r.width)
    (Solution.repeaters report.Rip.solution);
  printf "total width : %.1f u\n" report.Rip.total_width;
  printf "delay       : %.2f ps\n" (report.Rip.delay *. 1e12);
  printf "power       : %.4f mW\n" (report.Rip.power_watts *. 1e3);
  printf "runtime     : %.1f ms\n" (report.Rip.runtime_seconds *. 1e3)

let print_trace (report : Rip.report) =
  let open Printf in
  let trace = report.Rip.trace in
  (match trace.Rip.coarse with
  | Some c ->
      printf "line 1 (coarse DP%s): width %.1f u, %d repeaters\n"
        (if trace.Rip.used_fallback_library then ", fallback library" else "")
        c.Rip_dp.Power_dp.total_width
        (Solution.count c.Rip_dp.Power_dp.solution)
  | None -> printf "line 1 (coarse DP): infeasible\n");
  (match trace.Rip.refined with
  | Some o ->
      printf
        "line 2 (REFINE): width %.1f u after %d iterations, %d moves, \
         lambda %.3g\n"
        o.Rip_refine.Refine.total_width o.Rip_refine.Refine.iterations
        o.Rip_refine.Refine.moves o.Rip_refine.Refine.lambda
  | None -> printf "line 2 (REFINE): skipped\n");
  (match trace.Rip.refined_library with
  | Some b ->
      printf "line 3: library %s, %d candidate sites\n"
        (Fmt.str "%a" Rip_dp.Repeater_library.pp b)
        (List.length trace.Rip.refined_candidates)
  | None -> ());
  (match trace.Rip.final with
  | Some f ->
      printf "line 4 (final DP): width %.1f u\n" f.Rip_dp.Power_dp.total_width
  | None -> printf "line 4 (final DP): infeasible\n");
  match trace.Rip.rescue with
  | Some r ->
      printf "rescue pass: width %.1f u\n" r.Rip_dp.Power_dp.total_width
  | None -> ()

(* Only the DP options deviate from the defaults; None keeps Job.make's
   default config so the engine path stays byte-identical when the flag
   is absent. *)
let config_of_backend = function
  | None -> None
  | Some backend ->
      Some
        {
          Config.default with
          Config.dp = { Config.default.Config.dp with Config.backend = backend };
        }

let solve_command paths budget_ps slack trace jobs dp_backend =
  let config = config_of_backend dp_backend in
  let loaded = List.map load paths in
  match
    List.find_map (function Error e -> Some e | Ok _ -> None) loaded
  with
  | Some e ->
      prerr_endline e;
      1
  | None ->
      let nets = List.filter_map Result.to_option loaded in
      (* Budgets are resolved before batching: the per-net tau_min anchor
         is part of stating the problem, not of solving it. *)
      let jobs_array =
        Array.of_list
          (List.map
             (fun net ->
               let geometry = Geometry.of_net net in
               let budget =
                 match budget_ps with
                 | Some ps -> ps *. 1e-12
                 | None -> slack *. Rip.tau_min process geometry
               in
               Job.make ~geometry ?config process net ~budget)
             nets)
      in
      let outcomes, telemetry = Engine.run_stats ?jobs jobs_array in
      let failures = ref 0 in
      Array.iteri
        (fun i (outcome : Job.outcome) ->
          let job = jobs_array.(i) in
          let net = job.Job.net in
          if i > 0 then print_newline ();
          Printf.printf "net %s: %.0f um, %d segments; budget %.2f ps\n"
            net.Rip_net.Net.name
            (Rip_net.Net.total_length net)
            (Rip_net.Net.segment_count net)
            (job.Job.budget *. 1e12);
          match outcome.Job.result with
          | Error e ->
              incr failures;
              Fmt.epr "error: %a@." Rip.pp_error e
          | Ok (Job.Dp_result _) ->
              incr failures;
              Fmt.epr "error: unexpected baseline result@."
          | Ok (Job.Rip_report report) ->
              print_solution report;
              if trace then print_trace report)
        outcomes;
      if Array.length jobs_array > 1 then
        Printf.printf "\nbatch: %s\n"
          (Fmt.str "%a" Rip_engine.Telemetry.pp telemetry);
      if !failures > 0 then 1 else 0

let tau_min_command path =
  match load path with
  | Error e ->
      prerr_endline e;
      1
  | Ok net ->
      let geometry = Geometry.of_net net in
      Printf.printf "tau_min(%s) = %.2f ps\n" net.Rip_net.Net.name
        (Rip.tau_min process geometry *. 1e12);
      0

open Cmdliner

let net_files =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"NET_FILE"
        ~doc:"Net description files (see Rip_net.Net_io); several files \
              form one parallel batch.")

let net_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NET_FILE" ~doc:"Net description file (see Rip_net.Net_io).")

let budget_ps =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ps" ] ~docv:"PS" ~doc:"Absolute delay budget in picoseconds.")

let slack =
  Arg.(
    value & opt float 1.3
    & info [ "slack" ] ~docv:"MULT"
        ~doc:"Delay budget as a multiple of the net's minimum delay \
              (ignored when --budget-ps is given).")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-phase RIP trace.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for batch solving (default: the machine's \
              recommended domain count, capped at the number of net \
              files; a single net solves inline with no worker domain).")

let dp_backend =
  let backends =
    [
      ("reference", Rip_dp.Power_dp.Reference);
      ("fast", Rip_dp.Power_dp.Fast);
      ("auto", Rip_dp.Power_dp.Auto);
    ]
  in
  Arg.(
    value
    & opt (some (enum backends)) None
    & info [ "dp-backend" ] ~docv:"BACKEND"
        ~doc:
          "Power-DP backend: $(b,reference) (per-state Hashtbl labels), \
           $(b,fast) (candidate-pruning, flat label arenas; bit-identical \
           results) or $(b,auto) (fast above the instance-size cutover). \
           Defaults to the solver config's choice (auto).")

let solve_term =
  Term.(
    const solve_command $ net_files $ budget_ps $ slack $ trace $ jobs
    $ dp_backend)

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Insert repeaters for minimal power under a delay budget")
    solve_term

let tau_min_cmd =
  Cmd.v
    (Cmd.info "tau-min" ~doc:"Report the minimum achievable Elmore delay of a net")
    Term.(const tau_min_command $ net_file)

let main =
  Cmd.group
    (Cmd.info "rip_cli" ~version:"1.0.0"
       ~doc:"RIP: hybrid repeater insertion for low power (DATE 2005)")
    [ solve_cmd; tau_min_cmd ]

let () = exit (Cmd.eval' main)
