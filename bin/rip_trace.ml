(* rip_trace: offline companion for the cluster's observability dumps.

     rip_trace merge trace-router.json trace-s0.json trace-s1.json -o merged.json
     rip_trace query wide-router.jsonl wide-s0.jsonl --outcome degraded
     rip_trace check merged.json --require-multi-forward

   merge joins per-process Chrome-trace dumps (rip_serviced/rip_routerd
   --trace-out) into one timeline on the shared monotonic timebase;
   query filters and aggregates wide-event spools (--wide-events); check
   verifies that merged traces actually link across processes — that a
   shard's spans parent under the router's forward span — and can gate a
   CI run on hedged/failover traces being present and linked. *)

module Trace_merge = Rip_obs.Trace_merge
module Wide_event = Rip_obs.Wide_event

(* ---------- merge ---------- *)

let run_merge files output =
  if files = [] then begin
    prerr_endline "rip_trace: merge needs at least one trace file";
    2
  end
  else
    match Trace_merge.merge_files files with
    | Error e ->
        Printf.eprintf "rip_trace: %s\n" e;
        1
    | Ok json -> (
        match output with
        | None ->
            print_string json;
            0
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Printf.eprintf "rip_trace: merged %d dumps into %s\n"
              (List.length files) path;
            0)

(* ---------- query ---------- *)

type filter = {
  outcome : string option;
  shard : string option;
  process : string option;
  trace_id : string option;
  hedged : bool;
  failover : bool;
  spilled : bool;
  breaker_skip : bool;
  min_latency : float;  (* seconds *)
}

let matches f (e : Wide_event.t) =
  let opt_eq o v = match o with None -> true | Some s -> String.equal s v in
  opt_eq f.outcome e.outcome && opt_eq f.shard e.shard
  && opt_eq f.process e.process
  && opt_eq f.trace_id e.trace_id
  && ((not f.hedged) || e.hedged)
  && ((not f.failover) || e.failover)
  && ((not f.spilled) || e.spilled)
  && ((not f.breaker_skip) || e.breaker_skip)
  && e.latency >= f.min_latency

let count_by key events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let run_query files outcome shard process trace_id hedged failover spilled
    breaker_skip min_latency_ms print_lines =
  if files = [] then begin
    prerr_endline "rip_trace: query needs at least one spool file";
    2
  end
  else begin
    let f =
      {
        outcome;
        shard;
        process;
        trace_id;
        hedged;
        failover;
        spilled;
        breaker_skip;
        min_latency = min_latency_ms /. 1000.0;
      }
    in
    let all = Wide_event.load_files files in
    let hits = List.filter (matches f) all in
    if print_lines then
      List.iter (fun e -> print_endline (Wide_event.to_line e)) hits
    else begin
      Printf.printf "events: %d matched of %d loaded\n" (List.length hits)
        (List.length all);
      let section title rows =
        if rows <> [] then begin
          Printf.printf "%s:\n" title;
          List.iter (fun (k, v) -> Printf.printf "  %-12s %d\n" k v) rows
        end
      in
      section "by outcome" (count_by (fun (e : Wide_event.t) -> e.outcome) hits);
      section "by shard"
        (count_by
           (fun (e : Wide_event.t) -> if e.shard = "" then "(none)" else e.shard)
           hits);
      section "by process" (count_by (fun (e : Wide_event.t) -> e.process) hits);
      let flag name pred =
        let n = List.length (List.filter pred hits) in
        if n > 0 then Printf.printf "%-14s %d\n" name n
      in
      flag "hedged" (fun (e : Wide_event.t) -> e.hedged);
      flag "hedge_won" (fun (e : Wide_event.t) -> e.hedge_won);
      flag "failover" (fun (e : Wide_event.t) -> e.failover);
      flag "spilled" (fun (e : Wide_event.t) -> e.spilled);
      flag "breaker_skip" (fun (e : Wide_event.t) -> e.breaker_skip);
      let lat =
        List.map (fun (e : Wide_event.t) -> e.latency) hits |> Array.of_list
      in
      Array.sort compare lat;
      if Array.length lat > 0 then
        Printf.printf
          "latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n"
          (1000.0 *. percentile lat 0.50)
          (1000.0 *. percentile lat 0.95)
          (1000.0 *. percentile lat 0.99)
          (1000.0 *. lat.(Array.length lat - 1))
    end;
    0
  end

(* ---------- check ---------- *)

let arg name span =
  List.assoc_opt name span.Trace_merge.span_args

let is_forward span =
  String.equal span.Trace_merge.span_cat "router"
  && String.length span.Trace_merge.span_name > 8
  && String.sub span.Trace_merge.span_name 0 8 = "forward:"

(* A trace "links" when some span recorded by another process parents
   under a router forward span — the wire TRACE header demonstrably
   carried the context across the hop.  Distinct forward targets (a
   forward:s0 and a forward:s1 in one trace) are the signature of a
   hedge or failover: a replayed workload re-forwards to the same
   primary, but only tail tolerance tries a second shard. *)
let analyse spans =
  let forwards = List.filter is_forward spans in
  let targets =
    List.sort_uniq String.compare
      (List.map (fun s -> s.Trace_merge.span_name) forwards)
  in
  let linked =
    List.exists
      (fun span ->
        (not (is_forward span))
        && List.exists
             (fun fwd ->
               (not (String.equal fwd.Trace_merge.span_process
                       span.Trace_merge.span_process))
               && match (arg "span_id" fwd, arg "parent_span_id" span) with
                  | Some fid, Some pid -> String.equal fid pid
                  | _ -> false)
             forwards)
      spans
  in
  (List.length targets, linked)

let run_check files require_multi =
  if files = [] then begin
    prerr_endline "rip_trace: check needs at least one trace file";
    2
  end
  else begin
    let dumps, errors =
      List.fold_left
        (fun (dumps, errors) file ->
          match Trace_merge.load_file file with
          | Ok d -> (d :: dumps, errors)
          | Error e -> (dumps, Printf.sprintf "%s: %s" file e :: errors))
        ([], []) files
    in
    if errors <> [] then begin
      List.iter (Printf.eprintf "rip_trace: %s\n") (List.rev errors);
      1
    end
    else begin
      let traces = Trace_merge.traces (List.rev dumps) in
      let total = List.length traces in
      let linked = ref 0 and multi_linked = ref 0 in
      List.iter
        (fun (_, spans) ->
          let forwards, is_linked = analyse spans in
          if is_linked then begin
            incr linked;
            if forwards >= 2 then incr multi_linked
          end)
        traces;
      Printf.printf
        "traces: %d total, %d linked across processes, %d linked with \
         forwards to multiple shards (hedge or failover)\n"
        total !linked !multi_linked;
      if total = 0 then begin
        prerr_endline "rip_trace: check failed: no traces found";
        1
      end
      else if !linked = 0 then begin
        prerr_endline
          "rip_trace: check failed: no trace links a router forward span to \
           a shard span";
        1
      end
      else if require_multi && !multi_linked = 0 then begin
        prerr_endline
          "rip_trace: check failed: no linked trace shows a hedged or \
           failover request (forwards to >= 2 shards)";
        1
      end
      else 0
    end
  end

(* ---------- cmdliner ---------- *)

open Cmdliner

let files =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE")

let merge_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the merged Chrome-trace JSON here (default: stdout).")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge per-process --trace-out dumps into one cross-process \
             Chrome-trace timeline (open in chrome://tracing or Perfetto).")
    Term.(const run_merge $ files $ output)

let query_cmd =
  let outcome =
    Arg.(
      value
      & opt (some string) None
      & info [ "outcome" ] ~docv:"O"
          ~doc:"Keep only events with this outcome (fresh, cached, degraded, \
                timeout, busy, toobig, error, shed).")
  in
  let shard =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"ID" ~doc:"Keep only events served by this shard.")
  in
  let process =
    Arg.(
      value
      & opt (some string) None
      & info [ "process" ] ~docv:"SCOPE"
          ~doc:"Keep only events emitted by this process (router, s0, ...).")
  in
  let trace_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"HEX"
          ~doc:"Keep only events belonging to this distributed trace.")
  in
  let hedged = Arg.(value & flag & info [ "hedged" ] ~doc:"Hedged events only.") in
  let failover =
    Arg.(value & flag & info [ "failover" ] ~doc:"Failover events only.")
  in
  let spilled =
    Arg.(value & flag & info [ "spilled" ] ~doc:"Price-spilled events only.")
  in
  let breaker_skip =
    Arg.(
      value & flag
      & info [ "breaker-skip" ]
          ~doc:"Events whose primary shard was skipped by an open breaker.")
  in
  let min_latency_ms =
    Arg.(
      value & opt float 0.0
      & info [ "min-latency-ms" ] ~docv:"MS"
          ~doc:"Keep only events at least this slow.")
  in
  let print_lines =
    Arg.(
      value & flag
      & info [ "print" ]
          ~doc:"Print the matching wide-event JSON lines instead of the \
                aggregate summary.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Filter and aggregate --wide-events spools.  Interesting events \
             (non-fresh/cached outcomes, hedge/failover/spill/breaker \
             involvement) are spooled at 100%, so their counts here are \
             exact, not estimates.")
    Term.(
      const run_query $ files $ outcome $ shard $ process $ trace_id $ hedged
      $ failover $ spilled $ breaker_skip $ min_latency_ms $ print_lines)

let check_cmd =
  let require_multi =
    Arg.(
      value & flag
      & info [ "require-multi-forward" ]
          ~doc:"Also fail unless at least one linked trace carries forwards \
                to two or more distinct shards — evidence a hedged or \
                failover request propagated its context to both.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify cross-process linkage over the per-process trace dumps \
             (pass the same files merge takes): at least one trace must \
             contain a shard-recorded span whose parent is a router forward \
             span.  Exit 1 otherwise — the CI gate for tracing regressions.")
    Term.(const run_check $ files $ require_multi)

let main =
  Cmd.group
    (Cmd.info "rip_trace" ~version:"1.0.0"
       ~doc:"Merge, query and verify the solve cluster's distributed traces \
             and wide-event spools")
    [ merge_cmd; query_cmd; check_cmd ]

let () = exit (Cmd.eval' main)
