(* rip_lint: determinism and domain-safety checks over the typed trees
   (.cmt files) dune already produces.  Exit code 1 on any finding. *)

open Cmdliner

let lib =
  let doc =
    "Dune library name the units belong to; selects the default rule set."
  in
  Arg.(value & opt string "default" & info [ "lib" ] ~docv:"NAME" ~doc)

let rules =
  let doc =
    "Comma-separated rule ids to run, overriding the per-library default. \
     Known rules: no-poly-compare, no-hashtbl-order, no-wall-clock, \
     guarded-mutation, float-format-precision."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let cmts =
  let doc = "Compiled typed trees (.cmt) to lint." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"CMT" ~doc)

let main lib rules cmts =
  let rules =
    match rules with
    | Some spec -> (
        try Rip_lint.Lint_config.parse_rules spec
        with Invalid_argument msg ->
          prerr_endline ("rip_lint: " ^ msg);
          exit 2)
    | None -> Rip_lint.Lint_config.rules_for_library lib
  in
  let findings = Rip_lint.Driver.run ~library:lib ~rules cmts in
  List.iter
    (fun f -> print_endline (Rip_lint.Finding.to_string f))
    findings;
  if findings <> [] then exit 1

let cmd =
  let doc = "static determinism and domain-safety checks for rip" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads the .cmt typed trees produced by dune and reports rule \
         violations as $(b,file:line:col [rule-id] message). A finding can \
         be suppressed at the offending expression with \
         [@lint.allow \"rule-id\"] together with a comment justifying why \
         the invariant still holds.";
    ]
  in
  Cmd.v
    (Cmd.info "rip_lint" ~doc ~man)
    Term.(const main $ lib $ rules $ cmts)

let () = exit (Cmd.eval cmd)
