(* rip_lint: determinism and domain-safety checks over the typed trees
   (.cmt files) dune already produces.  Exit code 1 on any finding. *)

open Cmdliner

let lib =
  let doc =
    "Dune library name the units belong to; selects the default rule set."
  in
  Arg.(value & opt string "default" & info [ "lib" ] ~docv:"NAME" ~doc)

let rules =
  let doc =
    "Comma-separated rule ids to run, overriding the per-library default. \
     Known rules: no-poly-compare, no-hashtbl-order, no-wall-clock, \
     guarded-mutation, float-format-precision, domain-escape, fd-leak, \
     blocking-under-lock, alloc-in-hot-loop."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let format =
  let doc = "Output format: $(b,text) (one finding per line) or $(b,sarif)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let baseline =
  let doc =
    "Known-findings baseline file; findings listed in it are not \
     reported, so the exit code reflects $(i,new) findings only."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_baseline =
  let doc =
    "Rewrite the --baseline file to contain exactly the current findings \
     (exit 0); requires --baseline."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let cmts =
  let doc = "Compiled typed trees (.cmt) to lint." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"CMT" ~doc)

let main lib rules format baseline update_baseline cmts =
  let rules =
    match rules with
    | Some spec -> (
        try Rip_lint.Lint_config.parse_rules spec
        with Invalid_argument msg ->
          prerr_endline ("rip_lint: " ^ msg);
          exit 2)
    | None -> Rip_lint.Lint_config.rules_for_library lib
  in
  let findings = Rip_lint.Driver.run ~library:lib ~rules cmts in
  if update_baseline then begin
    match baseline with
    | None ->
        prerr_endline "rip_lint: --update-baseline requires --baseline FILE";
        exit 2
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Rip_lint.Baseline.render findings));
        Printf.printf "rip_lint: wrote %d finding(s) to %s\n"
          (List.length findings) path
  end
  else begin
    let findings =
      match baseline with
      | None -> findings
      | Some path -> (
          match Rip_lint.Baseline.load path with
          | baseline -> Rip_lint.Baseline.filter ~baseline findings
          | exception Failure msg ->
              prerr_endline ("rip_lint: " ^ msg);
              exit 2)
    in
    (match format with
    | `Text ->
        List.iter
          (fun f -> print_endline (Rip_lint.Finding.to_string f))
          findings
    | `Sarif ->
        print_string (Rip_lint.Sarif.render ~tool_version:"2.0" findings));
    if findings <> [] then exit 1
  end

let cmd =
  let doc = "static determinism and domain-safety checks for rip" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads the .cmt typed trees produced by dune and reports rule \
         violations as $(b,file:line:col [rule-id] message). A finding can \
         be suppressed at the offending expression with \
         [@lint.allow \"rule-id\"] together with a comment justifying why \
         the invariant still holds.";
    ]
  in
  Cmd.v
    (Cmd.info "rip_lint" ~doc ~man)
    Term.(
      const main $ lib $ rules $ format $ baseline $ update_baseline $ cmts)

let () = exit (Cmd.eval cmd)
