(* rip_top: a live terminal dashboard for a solve cluster.

     rip_top --socket /tmp/rip_router.sock
     rip_top --endpoint /tmp/a.sock --endpoint /tmp/b.sock --interval 1
     rip_top --socket r.sock --once

   Polls METRICS on every endpoint each refresh and renders one screen:
   router endpoints contribute a per-shard table (price, breaker state,
   up, forwarded/failover/spill counters) plus hedge and forward-latency
   lines; shard endpoints contribute a per-shard row (requests, cache
   hit rate, queue depth, solve p50/p95/p99, journal bytes).  --once
   prints a single frame without clearing the screen — the mode CI and
   scripts use. *)

module Client = Rip_service.Client
module Protocol = Rip_service.Protocol
module Obs = Rip_obs.Metrics

let fetch_metrics connect =
  match
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client Protocol.Metrics)
  with
  | Ok (Protocol.Metrics_frame body) -> Ok body
  | Ok _ -> Error "unexpected response to METRICS"
  | Error e -> Error e
  | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)

let scalar body name = Option.value ~default:0.0 (Obs.scalar body name)

let quantiles body name =
  match List.assoc_opt name (Obs.parse_histograms body) with
  | None -> None
  | Some snap ->
      let q p = Obs.Histogram.quantile snap p in
      Some (q 0.50, q 0.95, q 0.99, snap.Obs.Histogram.count)

let ms v = 1000.0 *. v

let human_bytes b =
  if b >= 1048576.0 then Printf.sprintf "%.1f MiB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let breaker_name = function
  | 0.0 -> "closed"
  | 1.0 -> "OPEN"
  | 2.0 -> "half-open"
  | _ -> "?"

(* Shard ids of a router exposition, recovered from the
   [rip_router_shard_<id>_price] gauge names. *)
let router_shard_ids body =
  let prefix = "rip_router_shard_" and suffix = "_price" in
  List.filter_map
    (fun (name, _) ->
      let lp = String.length prefix and ls = String.length suffix in
      let ln = String.length name in
      if
        ln > lp + ls
        && String.sub name 0 lp = prefix
        && String.sub name (ln - ls) ls = suffix
      then Some (String.sub name lp (ln - lp - ls))
      else None)
    (Obs.parse_scalars body)

let render_router buf label body =
  let s name = scalar body name in
  Buffer.add_string buf
    (Printf.sprintf "router %s  up %.0fs  requests %.0f  in-flight %.0f\n"
       label
       (s "rip_router_uptime_seconds")
       (s "rip_router_requests_total")
       (s "rip_router_in_flight"));
  Buffer.add_string buf
    (Printf.sprintf
       "  shed %.0f  degraded %.0f  rebalances %.0f  hedges %.0f (wins %.0f)\n"
       (s "rip_router_shed_total")
       (s "rip_router_degraded_total")
       (s "rip_router_rebalances_total")
       (s "rip_router_hedges_total")
       (s "rip_router_hedge_wins_total"));
  (match quantiles body "rip_router_forward_seconds" with
  | Some (p50, p95, p99, count) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  forward latency (n=%d): p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n"
           count (ms p50) (ms p95) (ms p99))
  | None -> ());
  let shards = router_shard_ids body in
  if shards <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %-4s %-10s %8s %10s %10s %8s %8s\n" "shard" "up"
         "breaker" "price" "forwarded" "failovers" "spills" "trips");
    List.iter
      (fun id ->
        let m name = s (Printf.sprintf "rip_router_shard_%s_%s" id name) in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s %-4s %-10s %8.2f %10.0f %10.0f %8.0f %8.0f\n"
             id
             (if m "up" = 1.0 then "yes" else "NO")
             (breaker_name (m "breaker_state"))
             (m "price") (m "forwarded_total") (m "failovers_total")
             (m "spills_total") (m "breaker_opens_total")))
      shards
  end

let render_shard buf label body =
  let s name = scalar body name in
  let hits = s "rip_cache_hits" and misses = s "rip_cache_misses" in
  let lookups = hits +. misses in
  let hit_rate = if lookups > 0.0 then 100.0 *. hits /. lookups else 0.0 in
  Buffer.add_string buf
    (Printf.sprintf
       "shard %s  up %.0fs  requests %.0f  in-flight %.0f  queue %.0f\n" label
       (s "rip_uptime_seconds")
       (s "rip_requests_total")
       (s "rip_in_flight") (s "rip_queue_depth"));
  Buffer.add_string buf
    (Printf.sprintf
       "  solved %.0f  degraded %.0f  timeouts %.0f  busy %.0f  errors %.0f\n"
       (s "rip_solved_total") (s "rip_degraded_total")
       (s "rip_timeouts_total")
       (s "rip_rejected_busy_total")
       (s "rip_errors_total"));
  Buffer.add_string buf
    (Printf.sprintf
       "  cache: %.1f%% hit (%.0f/%.0f), %.0f entries  journal %s\n" hit_rate
       hits lookups (s "rip_cache_size")
       (human_bytes (s "rip_journal_bytes")));
  (match quantiles body "rip_solve_cpu_seconds" with
  | Some (p50, p95, p99, count) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  solve cpu (n=%d): p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n" count
           (ms p50) (ms p95) (ms p99))
  | None -> ());
  match quantiles body "rip_queue_wait_seconds" with
  | Some (p50, p95, p99, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  queue wait: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n" (ms p50)
           (ms p95) (ms p99))
  | None -> ()

let render_frame connects labels =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i connect ->
      (match fetch_metrics connect with
      | Error e ->
          Buffer.add_string buf
            (Printf.sprintf "%s: unreachable (%s)\n" labels.(i) e)
      | Ok body ->
          if Option.is_some (Obs.scalar body "rip_router_requests_total") then
            render_router buf labels.(i) body
          else render_shard buf labels.(i) body);
      if i < Array.length connects - 1 then Buffer.add_char buf '\n')
    connects;
  Buffer.contents buf

let run socket_path port host endpoints interval once count =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if interval <= 0.0 then begin
    prerr_endline "rip_top: --interval must be positive";
    2
  end
  else begin
    let connects, labels =
      match endpoints with
      | [] ->
          let connect () =
            match port with
            | Some port -> Client.connect_tcp ~host ~port ()
            | None -> Client.connect_unix socket_path
          in
          let label =
            match port with
            | Some port -> Printf.sprintf "%s:%d" host port
            | None -> socket_path
          in
          ([| connect |], [| label |])
      | endpoints ->
          ( Array.of_list
              (List.map (fun path () -> Client.connect_unix path) endpoints),
            Array.of_list endpoints )
    in
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    if not once then Sys.set_signal Sys.sigint handler;
    let frames = if once then 1 else Option.value ~default:max_int count in
    let rec loop remaining =
      if remaining <= 0 || !stop then 0
      else begin
        let frame = render_frame connects labels in
        if not once then print_string "\027[2J\027[H";
        print_string frame;
        flush stdout;
        if remaining > 1 && not !stop then Thread.delay interval;
        loop (remaining - 1)
      end
    in
    loop frames
  end

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_routerd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the daemon to watch (ignored with \
              --port or --endpoint).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Watch a TCP daemon instead.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Host for --port.")

let endpoints =
  Arg.(
    value & opt_all string []
    & info [ "endpoint" ] ~docv:"SOCKET"
        ~doc:"Watch this Unix-socket endpoint (repeatable); mix a router \
              and bare shards freely — each is detected from its METRICS \
              families.")

let interval =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")

let once =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:"Print a single frame without clearing the screen and exit — \
              for CI and scripts.")

let count =
  Arg.(
    value
    & opt (some int) None
    & info [ "count" ] ~docv:"N" ~doc:"Stop after N frames (default: run \
                                       until interrupted).")

let main =
  Cmd.v
    (Cmd.info "rip_top" ~version:"1.0.0"
       ~doc:"Live per-shard dashboard over METRICS: prices, breaker states, \
             cache hit rates, latency percentiles, hedge wins")
    Term.(
      const run $ socket_path $ port $ host $ endpoints $ interval $ once
      $ count)

let () = exit (Cmd.eval' main)
