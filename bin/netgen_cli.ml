(* netgen: emit random Section-6 benchmark nets as net files.

     netgen_cli --count 20 --seed 1380533809 --out-dir nets/ *)

module Netgen = Rip_workload.Netgen
module Suite = Rip_workload.Suite

(* Create [dir] and any missing parents.  EEXIST is success, not an
   error: concurrent invocations racing to create the same directory
   (a sharded workload generation fan-out) must all win. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if not (String.equal parent dir) then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let generate count seed out_dir =
  let rng = Rip_numerics.Prng.create (Int64.of_int seed) in
  mkdir_p out_dir;
  List.iter
    (fun index ->
      let net = Netgen.generate rng ~index in
      let path =
        Filename.concat out_dir (Printf.sprintf "net%02d.net" index)
      in
      Rip_net.Net_io.write_file path net;
      Printf.printf "%s: %d segments, %.0f um, zone %s\n" path
        (Rip_net.Net.segment_count net)
        (Rip_net.Net.total_length net)
        (Fmt.str "%a" Fmt.(list Rip_net.Zone.pp) net.Rip_net.Net.zones))
    (List.init count (fun i -> i + 1));
  0

open Cmdliner

let count =
  Arg.(
    value & opt int 20
    & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of nets to generate.")

let seed =
  Arg.(
    value
    & opt int (Int64.to_int Suite.default_seed)
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Generator seed; the default reproduces the benchmark suite.")

let out_dir =
  Arg.(
    value & opt string "nets"
    & info [ "out-dir"; "o" ] ~docv:"DIR" ~doc:"Output directory.")

let main =
  Cmd.v
    (Cmd.info "netgen_cli" ~version:"1.0.0"
       ~doc:"Generate random global-interconnect benchmarks (paper Section 6)")
    Term.(const generate $ count $ seed $ out_dir)

let () = exit (Cmd.eval' main)
