(* rip_loadgen: closed-loop load generator for rip_serviced / rip_routerd.

     rip_loadgen --socket /tmp/rip.sock --requests 400 --connections 4
     rip_loadgen --port 7177 --passes 2 --distinct-nets 6
     rip_loadgen --deadline-ms 50 --retries 3 --attempt-timeout-ms 500
     rip_loadgen --endpoints /tmp/a.sock --endpoints /tmp/b.sock --verify
     rip_loadgen --socket /tmp/rip_router.sock --dump-metrics

   Replays a deterministic Netgen workload (a few distinct nets repeated
   many times, as a router re-querying global nets would) against a
   running daemon and reports throughput, latency percentiles, retry and
   degradation counts, and the server's STATS counter deltas next to its
   own counts.  With --passes 2 the second pass replays the identical
   workload against the now-warm cache — the cold-vs-warm throughput
   comparison.

   With --endpoints (repeatable) the generator talks to several shards
   directly, no router in the path: it asks each endpoint HEALTH for
   its shard id, builds the same consistent-hash ring rip_routerd
   would, and routes every net to its owning shard — so a
   multi-endpoint run measures pure aggregate shard throughput while
   keeping each shard's cache as hot as routed traffic does.  STATS
   deltas are summed and METRICS histograms merged across endpoints, so
   the consistency exit-code gate survives the fan-out. *)

module Protocol = Rip_service.Protocol
module Client = Rip_service.Client
module Loadgen = Rip_service.Loadgen
module Obs = Rip_obs.Metrics
module Metrics = Rip_service.Metrics
module Ring = Rip_router.Ring
module Net = Rip_net.Net

let process = Rip_tech.Process.default_180nm

let fetch connect frame ~expect =
  match
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client frame)
  with
  | Ok response -> expect response
  | Error e -> Error e
  | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)

let fetch_stats connect =
  fetch connect Protocol.Stats ~expect:(function
    | Protocol.Stats_frame stats -> Ok stats
    | _ -> Error "unexpected response to STATS")

let fetch_metrics connect =
  fetch connect Protocol.Metrics ~expect:(function
    | Protocol.Metrics_frame body -> Ok body
    | _ -> Error "unexpected response to METRICS")

let fetch_health connect =
  fetch connect Protocol.Health ~expect:(function
    | Protocol.Health_frame health -> Ok health
    | _ -> Error "unexpected response to HEALTH")

(* A bare counter sample from a Prometheus exposition ("name 5"), 0 when
   the family is absent — a plain rip_serviced has no router families. *)
let counter_sample name body =
  let prefix = name ^ " " in
  String.split_on_char '\n' body
  |> List.fold_left
       (fun acc line ->
         if String.starts_with ~prefix line then
           match
             float_of_string_opt
               (String.sub line (String.length prefix)
                  (String.length line - String.length prefix))
           with
           | Some v -> acc + int_of_float v
           | None -> acc
         else acc)
       0

(* Hedged forwards fired by a router between two METRICS fetches, summed
   across endpoints.  Each one duplicated a request on a second shard. *)
let hedged_delta ~metrics_before ~metrics_after =
  let sum bodies =
    List.fold_left
      (fun acc body -> acc + counter_sample "rip_router_hedges_total" body)
      0 bodies
  in
  sum metrics_after - sum metrics_before

(* Sum several endpoints' STATS frames into one cluster view: counters
   and gauges add (delta-of-sums = sum-of-deltas, so the consistency
   identities survive), percentiles take the worst shard, uptime the
   oldest. *)
let sum_stats (stats : Protocol.stats list) =
  match stats with
  | [] -> invalid_arg "sum_stats: empty"
  | first :: rest ->
      List.fold_left
        (fun (a : Protocol.stats) (s : Protocol.stats) ->
          {
            Protocol.shard_id = "all";
            uptime_seconds = Float.max a.uptime_seconds s.uptime_seconds;
            requests = a.requests + s.requests;
            solved = a.solved + s.solved;
            errors = a.errors + s.errors;
            rejected_busy = a.rejected_busy + s.rejected_busy;
            timeouts = a.timeouts + s.timeouts;
            degraded = a.degraded + s.degraded;
            toobig = a.toobig + s.toobig;
            cache_self_heals = a.cache_self_heals + s.cache_self_heals;
            cache_hits = a.cache_hits + s.cache_hits;
            cache_misses = a.cache_misses + s.cache_misses;
            cache_evictions = a.cache_evictions + s.cache_evictions;
            cache_replayed = a.cache_replayed + s.cache_replayed;
            cache_size = a.cache_size + s.cache_size;
            cache_capacity = a.cache_capacity + s.cache_capacity;
            queue_wait_seconds = a.queue_wait_seconds +. s.queue_wait_seconds;
            solve_cpu_seconds = a.solve_cpu_seconds +. s.solve_cpu_seconds;
            journal_bytes = a.journal_bytes + s.journal_bytes;
            journal_compactions = a.journal_compactions + s.journal_compactions;
            in_flight = a.in_flight + s.in_flight;
            queue_depth = a.queue_depth + s.queue_depth;
            queue_wait_p50 = Float.max a.queue_wait_p50 s.queue_wait_p50;
            queue_wait_p95 = Float.max a.queue_wait_p95 s.queue_wait_p95;
            queue_wait_p99 = Float.max a.queue_wait_p99 s.queue_wait_p99;
            solve_p50 = Float.max a.solve_p50 s.solve_p50;
            solve_p95 = Float.max a.solve_p95 s.solve_p95;
            solve_p99 = Float.max a.solve_p99 s.solve_p99;
          })
        first rest

type totals = {
  sent : int;
  fresh : int;
  cached : int;
  degraded : int;
  timeouts : int;
  errors : int;
  busy : int;
  transport : int;
  retried_transport : int;
  retried_busy : int;
  retried_timeout : int;
  verify_mismatches : int;
}

let zero_totals =
  {
    sent = 0;
    fresh = 0;
    cached = 0;
    degraded = 0;
    timeouts = 0;
    errors = 0;
    busy = 0;
    transport = 0;
    retried_transport = 0;
    retried_busy = 0;
    retried_timeout = 0;
    verify_mismatches = 0;
  }

let add_totals t (r : Loadgen.result) =
  {
    sent = t.sent + r.sent;
    fresh = t.fresh + r.solved_fresh;
    cached = t.cached + r.solved_cached;
    degraded = t.degraded + r.degraded;
    timeouts = t.timeouts + r.timeouts;
    errors = t.errors + r.errors;
    busy = t.busy + r.busy;
    transport = t.transport + r.transport_failures;
    retried_transport = t.retried_transport + r.retried_transport;
    retried_busy = t.retried_busy + r.retried_busy;
    retried_timeout = t.retried_timeout + r.retried_timeout;
    verify_mismatches = t.verify_mismatches + r.verify_mismatches;
  }

let print_consistency ~before ~after ~hedged (t : totals) =
  let delta field = field after - field before in
  let requests_delta = delta (fun s -> s.Protocol.requests) in
  let hits_delta = delta (fun s -> s.Protocol.cache_hits) in
  let misses_delta = delta (fun s -> s.Protocol.cache_misses) in
  let errors_delta = delta (fun s -> s.Protocol.errors) in
  let busy_delta = delta (fun s -> s.Protocol.rejected_busy) in
  let solved_delta = delta (fun s -> s.Protocol.solved) in
  let timeouts_delta = delta (fun s -> s.Protocol.timeouts) in
  let degraded_delta = delta (fun s -> s.Protocol.degraded) in
  Printf.printf
    "server STATS deltas: requests %d, solved %d, hits %d, misses %d, \
     errors %d, busy %d, timeouts %d, degraded %d, evictions %d, \
     self-heals %d, replayed %d\n"
    requests_delta solved_delta hits_delta misses_delta errors_delta
    busy_delta timeouts_delta degraded_delta
    (delta (fun s -> s.Protocol.cache_evictions))
    (delta (fun s -> s.Protocol.cache_self_heals))
    (* Journal replay pre-warms the cache at boot without counting as a
       hit or a miss, so a nonzero replayed delta leaves the
       [misses = requests - hits] identity below untouched. *)
    (delta (fun s -> s.Protocol.cache_replayed));
  Printf.printf
    "loadgen counts     : requests %d, solved %d, hits %d, degraded %d, \
     timeouts %d, errors %d, busy %d (retries: busy %d, timeout %d, \
     transport %d)\n"
    t.sent (t.fresh + t.cached) t.cached t.degraded t.timeouts t.errors
    t.busy t.retried_busy t.retried_timeout t.retried_transport;
  (* Every retried BUSY/TIMEOUT attempt also reached the server, so its
     counters see [sent] plus those retries.  A transport retry may or
     may not have reached the server (the failure can hit before or
     after processing), so the airtight identities below are only
     checkable when no transport trouble occurred. *)
  if t.retried_transport > 0 || t.transport > 0 then begin
    Printf.printf
      "counters consistent: skipped (transport retries/failures make \
       server-side attempt counts ambiguous)\n";
    true
  end
  else if hedged > 0 then begin
    (* A hedged forward lands the same request on a second shard and
       discards one of the two answers, so cluster-wide requests, solved
       and hit/miss counts exceed the client's by up to [hedged] — and a
       discarded answer may still be in flight at scrape time.  The
       exact identities below do not apply; transport cleanliness (zero
       drops) is still enforced by the exit code. *)
    Printf.printf
      "counters consistent: skipped (%d hedged forwards duplicated \
       requests on a second shard)\n"
      hedged;
    true
  end
  else begin
    let attempts = t.sent + t.retried_busy + t.retried_timeout in
    let consistent =
      requests_delta = attempts
      && solved_delta = t.fresh + t.cached
      && hits_delta = t.cached
      && errors_delta = t.errors
      && busy_delta = t.busy + t.retried_busy
      && timeouts_delta = t.timeouts + t.retried_timeout
      && degraded_delta = t.degraded
      && misses_delta = requests_delta - hits_delta
    in
    Printf.printf "counters consistent: %s\n"
      (if consistent then "yes"
       else "NO (another client talking to the same daemon?)");
    consistent
  end

(* The server's view of itself, from the closing STATS frame: the gauge
   fields and its own histogram percentiles. *)
let print_server_now (s : Protocol.stats) =
  Printf.printf
    "server now         : uptime %.1f s, in_flight %d, queue_depth %d\n\
     server percentiles : queue p50/p95/p99 %.3f/%.3f/%.3f ms, solve \
     p50/p95/p99 %.3f/%.3f/%.3f ms (since startup)\n"
    s.Protocol.uptime_seconds s.Protocol.in_flight s.Protocol.queue_depth
    (s.Protocol.queue_wait_p50 *. 1e3)
    (s.Protocol.queue_wait_p95 *. 1e3)
    (s.Protocol.queue_wait_p99 *. 1e3)
    (s.Protocol.solve_p50 *. 1e3)
    (s.Protocol.solve_p95 *. 1e3)
    (s.Protocol.solve_p99 *. 1e3)

(* Delta of one server histogram across the run, from two METRICS
   scrapes.  [diff] raises when the families do not line up (daemon
   restarted between scrapes); treat that as no data. *)
let histogram_delta ~before ~after name =
  match
    ( List.assoc_opt name (Obs.parse_histograms before),
      List.assoc_opt name (Obs.parse_histograms after) )
  with
  | Some earlier, Some later -> (
      match Obs.Histogram.diff later earlier with
      | delta -> Some delta
      | exception Invalid_argument _ -> None)
  | _ -> None

(* Per-endpoint histogram deltas, merged into one cluster histogram.
   [None] as soon as any endpoint lacks the family — a partial merge
   would silently under-count. *)
let merged_histogram_delta ~before ~after name =
  let deltas =
    List.map2
      (fun before after -> histogram_delta ~before ~after name)
      before after
  in
  List.fold_left
    (fun acc delta ->
      match (acc, delta) with
      | Some acc, Some delta -> (
          match Obs.Histogram.merge acc delta with
          | merged -> Some merged
          | exception Invalid_argument _ -> None)
      | None, Some delta -> Some delta
      | _, None -> acc)
    None
    (match deltas with
    | [] -> []
    | _ when List.exists Option.is_none deltas -> []
    | _ -> deltas)

let print_histogram label (d : Obs.Histogram.snapshot) =
  let q p = Obs.Histogram.quantile d p *. 1e3 in
  Printf.printf
    "%-19s: n=%d, sum %.3f s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n" label
    d.Obs.Histogram.count d.Obs.Histogram.sum (q 0.5) (q 0.95) (q 0.99)

(* Client latencies bound server-side times from above, request by
   request: a fresh solve's queue wait and its solver CPU time both fit
   inside the round trip the client measured around that request.
   Order statistics preserve pointwise domination, and client and
   server use the same rank convention ({!Rip_numerics.Stats.quantile_rank}),
   so at every quantile the client's exact value must be >= the
   server's Lower bucket-bound estimate.  The request-by-request
   pairing only exists when every request of the run was one fresh
   solve, so the check is reported but skipped when cache hits,
   retries, degradation, timeouts or transport trouble blur it.

   Across endpoints the same argument holds shard by shard (each
   shard's histogram samples pair with the client latencies of the
   requests routed to it) and therefore also for the merged histogram
   against the pooled client percentiles. *)
let print_percentile_reconciliation ~metrics_before ~metrics_after
    (t : totals) passes (runs : Loadgen.multi list) =
  match
    ( merged_histogram_delta ~before:metrics_before ~after:metrics_after
        Metrics.queue_wait_metric,
      merged_histogram_delta ~before:metrics_before ~after:metrics_after
        Metrics.solve_cpu_metric )
  with
  | Some queue, Some solve -> (
      print_histogram "server queue wait" queue;
      print_histogram "server solve cpu" solve;
      let clean =
        t.cached = 0 && t.degraded = 0 && t.timeouts = 0 && t.errors = 0
        && t.busy = 0 && t.transport = 0 && t.retried_busy = 0
        && t.retried_timeout = 0 && t.retried_transport = 0
      in
      match runs with
      | [ run ] when clean && passes = 1 ->
          let client = run.Loadgen.merged in
          let lower s p =
            Obs.Histogram.quantile ~estimate:Obs.Histogram.Lower s p
          in
          let dominates (p, client_p) =
            client_p >= lower queue p && client_p >= lower solve p
          in
          let consistent =
            queue.Obs.Histogram.count = t.fresh
            && solve.Obs.Histogram.count = t.fresh
            && List.for_all dominates
                 [
                   (0.5, client.Loadgen.p50);
                   (0.95, client.Loadgen.p95);
                   (0.99, client.Loadgen.p99);
                 ]
          in
          Printf.printf "percentiles consistent: %s\n"
            (if consistent then
               "yes (client p50/p95/p99 dominate the server's lower bucket \
                bounds; histogram counts match)"
             else "NO (server histograms disagree with client latencies)");
          consistent
      | _ ->
          Printf.printf
            "percentiles consistent: skipped (needs one all-fresh pass: no \
             cache hits, retries, degradation or transport trouble — try \
             --distinct-nets >= --requests)\n";
          true)
  | _ ->
      Printf.printf
        "server histograms  : missing from METRICS; reconciliation skipped\n";
      true

(* Build the same ring rip_routerd would: ask each endpoint HEALTH for
   its shard id and hash every net's canonical digest over those ids,
   so direct multi-endpoint traffic lands exactly where routed traffic
   would and every shard's cache stays hot for its own key range. *)
let build_route connects =
  let ids =
    Array.map
      (fun connect ->
        Result.map
          (fun h -> h.Protocol.health_shard_id)
          (fetch_health connect))
      connects
  in
  let rec collect i acc =
    if i < 0 then Ok acc
    else
      match ids.(i) with
      | Error e -> Error e
      | Ok id -> collect (i - 1) (id :: acc)
  in
  Result.bind (collect (Array.length ids - 1) []) (fun ids ->
      match Ring.create (List.map (fun id -> (id, 1)) ids) with
      | ring ->
          let index_of id =
            let rec find i = function
              | [] -> 0
              | x :: _ when String.equal x id -> i
              | _ :: rest -> find (i + 1) rest
            in
            find 0 ids
          in
          Ok
            ( ids,
              fun ~index:_ frame ->
                match frame with
                | Protocol.Solve { net; _ } -> (
                    match Ring.lookup ring (Net.canonical_digest net) with
                    | Some id -> index_of id
                    | None -> 0)
                | _ -> 0 )
      | exception Invalid_argument e -> Error e)

let dump_metrics_mode connects labels =
  let failures =
    Array.to_list connects
    |> List.mapi (fun i connect ->
           if Array.length connects > 1 then
             Printf.printf "=== %s ===\n" labels.(i);
           match fetch_metrics connect with
           | Ok body ->
               print_string body;
               false
           | Error e ->
               Printf.eprintf "rip_loadgen: METRICS from %s failed: %s\n"
                 labels.(i) e;
               true)
  in
  if List.exists Fun.id failures then 1 else 0

let run_load socket_path port host endpoints requests connections
    distinct_nets seed slack passes deadline_ms traced retries
    attempt_timeout_ms backoff_ms skip_consistency verify dump_metrics =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if retries < 1 then begin
    prerr_endline "rip_loadgen: --retries must be at least 1";
    2
  end
  else begin
    let connects, labels =
      match endpoints with
      | [] ->
          let connect () =
            match port with
            | Some port -> Client.connect_tcp ~host ~port ()
            | None -> Client.connect_unix socket_path
          in
          let label =
            match port with
            | Some port -> Printf.sprintf "%s:%d" host port
            | None -> socket_path
          in
          ([| connect |], [| label |])
      | endpoints ->
          ( Array.of_list
              (List.map
                 (fun path () -> Client.connect_unix path)
                 endpoints),
            Array.of_list endpoints )
    in
    if dump_metrics then dump_metrics_mode connects labels
    else begin
      let policy =
        {
          Client.default_retry_policy with
          attempts = retries;
          backoff_seconds = backoff_ms /. 1000.0;
          attempt_timeout =
            Option.map (fun ms -> ms /. 1000.0) attempt_timeout_ms;
        }
      in
      let workload =
        Loadgen.workload ~seed:(Int64.of_int seed) ~distinct_nets ~slack
          ?deadline_ms ~traced ~requests process
      in
      let route =
        if Array.length connects = 1 then Ok None
        else Result.map (fun (_, f) -> Some f) (build_route connects)
      in
      let all_endpoints f =
        let results = Array.map f connects in
        let rec collect i acc =
          if i < 0 then Ok acc
          else
            match results.(i) with
            | Error e -> Error e
            | Ok x -> collect (i - 1) (x :: acc)
        in
        collect (Array.length results - 1) []
      in
      match (route, all_endpoints fetch_stats, all_endpoints fetch_metrics)
      with
      | Error e, _, _ ->
          Printf.eprintf "rip_loadgen: cannot build the shard ring: %s\n" e;
          1
      | _, Error e, _ | _, _, Error e ->
          Printf.eprintf "rip_loadgen: cannot reach the daemon: %s\n" e;
          1
      | Ok route, Ok stats_before, Ok metrics_before ->
          let runs =
            List.init passes (fun pass ->
                let label =
                  if passes = 1 then "pass"
                  else if pass = 0 then "pass 1 (cold)"
                  else Printf.sprintf "pass %d (warm)" (pass + 1)
                in
                let run =
                  Loadgen.run_multi ~connects ?route ~connections ~policy
                    ~seed:(Int64.of_int (seed + pass))
                    ~verify workload
                in
                Printf.printf "--- %s ---\n%s" label
                  (Loadgen.render run.Loadgen.merged);
                if Array.length connects > 1 then
                  Array.iteri
                    (fun e (r : Loadgen.result) ->
                      Printf.printf
                        "  %-24s: %d requests (fresh %d, cached %d, degraded \
                         %d, transport %d), %.1f req/s\n"
                        labels.(e) r.Loadgen.sent r.Loadgen.solved_fresh
                        r.Loadgen.solved_cached r.Loadgen.degraded
                        r.Loadgen.transport_failures r.Loadgen.throughput)
                    run.Loadgen.by_endpoint;
                run)
          in
          (match runs with
          | cold :: (_ :: _ as rest) ->
              let warm = List.nth rest (List.length rest - 1) in
              let throughput (r : Loadgen.multi) =
                r.Loadgen.merged.Loadgen.throughput
              in
              Printf.printf
                "cold -> warm throughput: %.1f -> %.1f req/s (%.1fx)\n"
                (throughput cold) (throughput warm)
                (if throughput cold > 0.0 then
                   throughput warm /. throughput cold
                 else 0.0)
          | _ -> ());
          let totals =
            List.fold_left
              (fun t (run : Loadgen.multi) -> add_totals t run.Loadgen.merged)
              zero_totals runs
          in
          let failures =
            List.exists
              (fun (run : Loadgen.multi) ->
                run.Loadgen.merged.Loadgen.transport_failures > 0
                || run.Loadgen.merged.Loadgen.errors > 0)
              runs
          in
          (if verify then
             Printf.printf "answers verified   : %s\n"
               (if totals.verify_mismatches = 0 then
                  "yes (every RESULT matched the bytes pinned for its net)"
                else
                  Printf.sprintf "NO (%d contradicting RESULT answers)"
                    totals.verify_mismatches));
          let metrics_after = all_endpoints fetch_metrics in
          let consistent =
            match all_endpoints fetch_stats with
            | Error e ->
                Printf.eprintf "rip_loadgen: cannot fetch closing STATS: %s\n"
                  e;
                false
            | Ok stats_after ->
                let hedged =
                  match metrics_after with
                  | Ok metrics_after ->
                      hedged_delta ~metrics_before ~metrics_after
                  | Error _ -> 0
                in
                let counters_ok =
                  print_consistency ~before:(sum_stats stats_before)
                    ~after:(sum_stats stats_after) ~hedged totals
                in
                print_server_now (sum_stats stats_after);
                counters_ok
          in
          let percentiles_ok =
            match metrics_after with
            | Error e ->
                Printf.eprintf
                  "rip_loadgen: cannot fetch closing METRICS: %s\n" e;
                false
            | Ok metrics_after ->
                print_percentile_reconciliation ~metrics_before ~metrics_after
                  totals passes runs
          in
          let reconciled =
            if skip_consistency then begin
              Printf.printf
                "exit gate          : --skip-consistency (transport/errors \
                 only)\n";
              true
            end
            else consistent && percentiles_ok
          in
          if failures || (not reconciled) || totals.verify_mismatches > 0
          then 1
          else 0
    end
  end

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_serviced.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the daemon (ignored with --port or \
              --endpoints).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect over TCP instead.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Daemon host for --port.")

let endpoints =
  Arg.(
    value & opt_all string []
    & info [ "endpoints"; "e" ] ~docv:"SOCKET"
        ~doc:"Talk to several shard daemons directly (repeatable, one Unix \
              socket each).  Requests route by the same consistent-hash \
              ring rip_routerd uses (shard ids fetched via HEALTH); STATS \
              deltas are summed and METRICS histograms merged across the \
              endpoints, keeping the consistency exit gate.")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"SOLVE requests per pass.")

let connections =
  Arg.(
    value & opt int 4
    & info [ "connections"; "c" ] ~docv:"C"
        ~doc:"Concurrent closed-loop connections (per endpoint with \
              --endpoints).")

let distinct_nets =
  Arg.(
    value & opt int 8
    & info [ "distinct-nets" ] ~docv:"K"
        ~doc:"Distinct nets in the workload; requests repeat over them \
              round-robin, so K far below N exercises the solve cache.")

let seed =
  Arg.(
    value & opt int 20050307
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Workload generator and retry-jitter seed.")

let slack =
  Arg.(
    value & opt float 1.3
    & info [ "slack" ] ~docv:"MULT"
        ~doc:"Delay budget as a multiple of each net's minimum delay.")

let passes =
  Arg.(
    value & opt int 1
    & info [ "passes" ] ~docv:"P"
        ~doc:"Replays of the identical workload; 2 gives a cold-vs-warm \
              cache comparison.")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Stamp every SOLVE with a DEADLINE header: past it the server \
              answers TIMEOUT or degrades to its analytic fallback tier.")

let traced =
  Arg.(
    value & flag
    & info [ "traced" ]
        ~doc:"Stamp every SOLVE with a deterministic root TRACE context \
              (scope 'loadgen', the request index as sequence), so servers \
              and routers run with --trace-out parent their spans under \
              this client's requests and rip_trace merge joins them into \
              one cross-process timeline.")

let retries =
  Arg.(
    value & opt int Client.default_retry_policy.attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:"Total attempts per request (>= 1); only transport failures, \
              BUSY and TIMEOUT are retried.")

let attempt_timeout_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "attempt-timeout-ms" ] ~docv:"MS"
        ~doc:"Per-attempt socket timeout; a stalled attempt counts as a \
              transport failure and is retried on a fresh connection.")

let backoff_ms =
  Arg.(
    value
    & opt float (Client.default_retry_policy.backoff_seconds *. 1000.0)
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Base of the full-jitter exponential backoff between retries.")

let skip_consistency =
  Arg.(
    value & flag
    & info [ "skip-consistency" ]
        ~doc:"Do not gate the exit code on STATS/percentile reconciliation \
              — only on transport failures and ERROR answers.  For chaos \
              runs (shards killed mid-run), where counter resets make the \
              identities unverifiable.")

let verify =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Pin the first RESULT's solution bytes per (net, budget) and \
              fail if any later RESULT — cached, fresh, or from another \
              shard — contradicts them.  DEGRADED answers are exempt.")

let dump_metrics =
  Arg.(
    value & flag
    & info [ "dump-metrics" ]
        ~doc:"Fetch and print METRICS from the target (every endpoint with \
              --endpoints), then exit without generating load.")

let main =
  Cmd.v
    (Cmd.info "rip_loadgen" ~version:"1.0.0"
       ~doc:"Closed-loop load generator and latency reporter for rip_serviced \
             and rip_routerd")
    Term.(
      const run_load $ socket_path $ port $ host $ endpoints $ requests
      $ connections $ distinct_nets $ seed $ slack $ passes $ deadline_ms
      $ traced $ retries $ attempt_timeout_ms $ backoff_ms
      $ skip_consistency $ verify $ dump_metrics)

let () = exit (Cmd.eval' main)
