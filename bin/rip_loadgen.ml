(* rip_loadgen: closed-loop load generator for rip_serviced.

     rip_loadgen --socket /tmp/rip.sock --requests 400 --connections 4
     rip_loadgen --port 7177 --passes 2 --distinct-nets 6

   Replays a deterministic Netgen workload (a few distinct nets repeated
   many times, as a router re-querying global nets would) against a
   running daemon and reports throughput, latency percentiles and the
   server's STATS counter deltas next to its own counts.  With
   --passes 2 the second pass replays the identical workload against the
   now-warm cache — the cold-vs-warm throughput comparison. *)

module Protocol = Rip_service.Protocol
module Client = Rip_service.Client
module Loadgen = Rip_service.Loadgen

let process = Rip_tech.Process.default_180nm

let fetch_stats connect =
  match
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client Protocol.Stats)
  with
  | Ok (Protocol.Stats_frame stats) -> Ok stats
  | Ok _ -> Error "unexpected response to STATS"
  | Error e -> Error e
  | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)

let print_consistency ~before ~after totals =
  let ( sent,
        solved_fresh,
        solved_cached,
        errors,
        busy ) =
    totals
  in
  let delta field = field after - field before in
  let requests_delta = delta (fun s -> s.Protocol.requests) in
  let hits_delta = delta (fun s -> s.Protocol.cache_hits) in
  let misses_delta = delta (fun s -> s.Protocol.cache_misses) in
  let errors_delta = delta (fun s -> s.Protocol.errors) in
  let busy_delta = delta (fun s -> s.Protocol.rejected_busy) in
  let solved_delta = delta (fun s -> s.Protocol.solved) in
  Printf.printf
    "server STATS deltas: requests %d, solved %d, hits %d, misses %d, \
     errors %d, busy %d, evictions %d\n"
    requests_delta solved_delta hits_delta misses_delta errors_delta
    busy_delta
    (delta (fun s -> s.Protocol.cache_evictions));
  Printf.printf
    "loadgen counts     : requests %d, solved %d, hits %d, errors %d, busy %d\n"
    sent
    (solved_fresh + solved_cached)
    solved_cached errors busy;
  (* Misses include solves that later errored or were rejected before
     caching; the airtight identities are the ones below. *)
  let consistent =
    requests_delta = sent
    && solved_delta = solved_fresh + solved_cached
    && hits_delta = solved_cached
    && errors_delta = errors
    && busy_delta = busy
    && misses_delta = sent - solved_cached
  in
  Printf.printf "counters consistent: %s\n"
    (if consistent then "yes"
     else "NO (another client talking to the same daemon?)");
  consistent

let run_load socket_path port host requests connections distinct_nets seed
    slack passes =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let connect () =
    match port with
    | Some port -> Client.connect_tcp ~host ~port
    | None -> Client.connect_unix socket_path
  in
  let workload =
    Loadgen.workload ~seed:(Int64.of_int seed) ~distinct_nets ~slack
      ~requests process
  in
  match fetch_stats connect with
  | Error e ->
      Printf.eprintf "rip_loadgen: cannot reach the daemon: %s\n" e;
      1
  | Ok before ->
      let results =
        List.init passes (fun pass ->
            let label =
              if passes = 1 then "pass"
              else if pass = 0 then "pass 1 (cold)"
              else Printf.sprintf "pass %d (warm)" (pass + 1)
            in
            let result = Loadgen.run ~connect ~connections workload in
            Printf.printf "--- %s ---\n%s" label (Loadgen.render result);
            result)
      in
      (match results with
      | cold :: (_ :: _ as rest) ->
          let warm = List.nth rest (List.length rest - 1) in
          Printf.printf
            "cold -> warm throughput: %.1f -> %.1f req/s (%.1fx)\n"
            cold.Loadgen.throughput warm.Loadgen.throughput
            (if cold.Loadgen.throughput > 0.0 then
               warm.Loadgen.throughput /. cold.Loadgen.throughput
             else 0.0)
      | _ -> ());
      let totals =
        List.fold_left
          (fun (sent, fresh, cached, errors, busy) (r : Loadgen.result) ->
            ( sent + r.sent,
              fresh + r.solved_fresh,
              cached + r.solved_cached,
              errors + r.errors,
              busy + r.busy ))
          (0, 0, 0, 0, 0) results
      in
      let failures =
        List.exists
          (fun (r : Loadgen.result) ->
            r.transport_failures > 0 || r.errors > 0)
          results
      in
      let consistent =
        match fetch_stats connect with
        | Error e ->
            Printf.eprintf "rip_loadgen: cannot fetch closing STATS: %s\n" e;
            false
        | Ok after -> print_consistency ~before ~after totals
      in
      if failures || not consistent then 1 else 0

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_serviced.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the daemon (ignored with --port).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect over TCP instead.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Daemon host for --port.")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"SOLVE requests per pass.")

let connections =
  Arg.(
    value & opt int 4
    & info [ "connections"; "c" ] ~docv:"C"
        ~doc:"Concurrent closed-loop connections.")

let distinct_nets =
  Arg.(
    value & opt int 8
    & info [ "distinct-nets" ] ~docv:"K"
        ~doc:"Distinct nets in the workload; requests repeat over them \
              round-robin, so K far below N exercises the solve cache.")

let seed =
  Arg.(
    value & opt int 20050307
    & info [ "seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")

let slack =
  Arg.(
    value & opt float 1.3
    & info [ "slack" ] ~docv:"MULT"
        ~doc:"Delay budget as a multiple of each net's minimum delay.")

let passes =
  Arg.(
    value & opt int 1
    & info [ "passes" ] ~docv:"P"
        ~doc:"Replays of the identical workload; 2 gives a cold-vs-warm \
              cache comparison.")

let main =
  Cmd.v
    (Cmd.info "rip_loadgen" ~version:"1.0.0"
       ~doc:"Closed-loop load generator and latency reporter for rip_serviced")
    Term.(
      const run_load $ socket_path $ port $ host $ requests $ connections
      $ distinct_nets $ seed $ slack $ passes)

let () = exit (Cmd.eval' main)
