(* rip_loadgen: closed-loop load generator for rip_serviced.

     rip_loadgen --socket /tmp/rip.sock --requests 400 --connections 4
     rip_loadgen --port 7177 --passes 2 --distinct-nets 6
     rip_loadgen --deadline-ms 50 --retries 3 --attempt-timeout-ms 500

   Replays a deterministic Netgen workload (a few distinct nets repeated
   many times, as a router re-querying global nets would) against a
   running daemon and reports throughput, latency percentiles, retry and
   degradation counts, and the server's STATS counter deltas next to its
   own counts.  With --passes 2 the second pass replays the identical
   workload against the now-warm cache — the cold-vs-warm throughput
   comparison. *)

module Protocol = Rip_service.Protocol
module Client = Rip_service.Client
module Loadgen = Rip_service.Loadgen
module Obs = Rip_obs.Metrics
module Metrics = Rip_service.Metrics

let process = Rip_tech.Process.default_180nm

let fetch_stats connect =
  match
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client Protocol.Stats)
  with
  | Ok (Protocol.Stats_frame stats) -> Ok stats
  | Ok _ -> Error "unexpected response to STATS"
  | Error e -> Error e
  | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)

let fetch_metrics connect =
  match
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client Protocol.Metrics)
  with
  | Ok (Protocol.Metrics_frame body) -> Ok body
  | Ok _ -> Error "unexpected response to METRICS"
  | Error e -> Error e
  | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)

type totals = {
  sent : int;
  fresh : int;
  cached : int;
  degraded : int;
  timeouts : int;
  errors : int;
  busy : int;
  transport : int;
  retried_transport : int;
  retried_busy : int;
  retried_timeout : int;
}

let print_consistency ~before ~after (t : totals) =
  let delta field = field after - field before in
  let requests_delta = delta (fun s -> s.Protocol.requests) in
  let hits_delta = delta (fun s -> s.Protocol.cache_hits) in
  let misses_delta = delta (fun s -> s.Protocol.cache_misses) in
  let errors_delta = delta (fun s -> s.Protocol.errors) in
  let busy_delta = delta (fun s -> s.Protocol.rejected_busy) in
  let solved_delta = delta (fun s -> s.Protocol.solved) in
  let timeouts_delta = delta (fun s -> s.Protocol.timeouts) in
  let degraded_delta = delta (fun s -> s.Protocol.degraded) in
  Printf.printf
    "server STATS deltas: requests %d, solved %d, hits %d, misses %d, \
     errors %d, busy %d, timeouts %d, degraded %d, evictions %d, \
     self-heals %d\n"
    requests_delta solved_delta hits_delta misses_delta errors_delta
    busy_delta timeouts_delta degraded_delta
    (delta (fun s -> s.Protocol.cache_evictions))
    (delta (fun s -> s.Protocol.cache_self_heals));
  Printf.printf
    "loadgen counts     : requests %d, solved %d, hits %d, degraded %d, \
     timeouts %d, errors %d, busy %d (retries: busy %d, timeout %d, \
     transport %d)\n"
    t.sent (t.fresh + t.cached) t.cached t.degraded t.timeouts t.errors
    t.busy t.retried_busy t.retried_timeout t.retried_transport;
  (* Every retried BUSY/TIMEOUT attempt also reached the server, so its
     counters see [sent] plus those retries.  A transport retry may or
     may not have reached the server (the failure can hit before or
     after processing), so the airtight identities below are only
     checkable when no transport trouble occurred. *)
  if t.retried_transport > 0 || t.transport > 0 then begin
    Printf.printf
      "counters consistent: skipped (transport retries/failures make \
       server-side attempt counts ambiguous)\n";
    true
  end
  else begin
    let attempts = t.sent + t.retried_busy + t.retried_timeout in
    let consistent =
      requests_delta = attempts
      && solved_delta = t.fresh + t.cached
      && hits_delta = t.cached
      && errors_delta = t.errors
      && busy_delta = t.busy + t.retried_busy
      && timeouts_delta = t.timeouts + t.retried_timeout
      && degraded_delta = t.degraded
      && misses_delta = requests_delta - hits_delta
    in
    Printf.printf "counters consistent: %s\n"
      (if consistent then "yes"
       else "NO (another client talking to the same daemon?)");
    consistent
  end

(* The server's view of itself, from the closing STATS frame: the gauge
   fields and its own histogram percentiles. *)
let print_server_now (s : Protocol.stats) =
  Printf.printf
    "server now         : uptime %.1f s, in_flight %d, queue_depth %d\n\
     server percentiles : queue p50/p95/p99 %.3f/%.3f/%.3f ms, solve \
     p50/p95/p99 %.3f/%.3f/%.3f ms (since startup)\n"
    s.Protocol.uptime_seconds s.Protocol.in_flight s.Protocol.queue_depth
    (s.Protocol.queue_wait_p50 *. 1e3)
    (s.Protocol.queue_wait_p95 *. 1e3)
    (s.Protocol.queue_wait_p99 *. 1e3)
    (s.Protocol.solve_p50 *. 1e3)
    (s.Protocol.solve_p95 *. 1e3)
    (s.Protocol.solve_p99 *. 1e3)

(* Delta of one server histogram across the run, from two METRICS
   scrapes.  [diff] raises when the families do not line up (daemon
   restarted between scrapes); treat that as no data. *)
let histogram_delta ~before ~after name =
  match
    ( List.assoc_opt name (Obs.parse_histograms before),
      List.assoc_opt name (Obs.parse_histograms after) )
  with
  | Some earlier, Some later -> (
      match Obs.Histogram.diff later earlier with
      | delta -> Some delta
      | exception Invalid_argument _ -> None)
  | _ -> None

let print_histogram label (d : Obs.Histogram.snapshot) =
  let q p = Obs.Histogram.quantile d p *. 1e3 in
  Printf.printf
    "%-19s: n=%d, sum %.3f s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n" label
    d.Obs.Histogram.count d.Obs.Histogram.sum (q 0.5) (q 0.95) (q 0.99)

(* Client latencies bound server-side times from above, request by
   request: a fresh solve's queue wait and its solver CPU time both fit
   inside the round trip the client measured around that request.
   Order statistics preserve pointwise domination, and client and
   server use the same rank convention ({!Rip_numerics.Stats.quantile_rank}),
   so at every quantile the client's exact value must be >= the
   server's Lower bucket-bound estimate.  The request-by-request
   pairing only exists when every request of the run was one fresh
   solve, so the check is reported but skipped when cache hits,
   retries, degradation, timeouts or transport trouble blur it. *)
let print_percentile_reconciliation ~before ~after (t : totals)
    (results : Loadgen.result list) =
  match
    ( histogram_delta ~before ~after Metrics.queue_wait_metric,
      histogram_delta ~before ~after Metrics.solve_cpu_metric )
  with
  | Some queue, Some solve -> (
      print_histogram "server queue wait" queue;
      print_histogram "server solve cpu" solve;
      let clean =
        t.cached = 0 && t.degraded = 0 && t.timeouts = 0 && t.errors = 0
        && t.busy = 0 && t.transport = 0 && t.retried_busy = 0
        && t.retried_timeout = 0 && t.retried_transport = 0
      in
      match results with
      | [ client ] when clean ->
          let lower s p =
            Obs.Histogram.quantile ~estimate:Obs.Histogram.Lower s p
          in
          let dominates (p, client_p) =
            client_p >= lower queue p && client_p >= lower solve p
          in
          let consistent =
            queue.Obs.Histogram.count = t.fresh
            && solve.Obs.Histogram.count = t.fresh
            && List.for_all dominates
                 [
                   (0.5, client.Loadgen.p50);
                   (0.95, client.Loadgen.p95);
                   (0.99, client.Loadgen.p99);
                 ]
          in
          Printf.printf "percentiles consistent: %s\n"
            (if consistent then
               "yes (client p50/p95/p99 dominate the server's lower bucket \
                bounds; histogram counts match)"
             else "NO (server histograms disagree with client latencies)");
          consistent
      | _ ->
          Printf.printf
            "percentiles consistent: skipped (needs one all-fresh pass: no \
             cache hits, retries, degradation or transport trouble — try \
             --distinct-nets >= --requests)\n";
          true)
  | _ ->
      Printf.printf
        "server histograms  : missing from METRICS; reconciliation skipped\n";
      true

let run_load socket_path port host requests connections distinct_nets seed
    slack passes deadline_ms retries attempt_timeout_ms backoff_ms =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if retries < 1 then begin
    prerr_endline "rip_loadgen: --retries must be at least 1";
    2
  end
  else begin
    let connect () =
      match port with
      | Some port -> Client.connect_tcp ~host ~port ()
      | None -> Client.connect_unix socket_path
    in
    let policy =
      {
        Client.default_retry_policy with
        attempts = retries;
        backoff_seconds = backoff_ms /. 1000.0;
        attempt_timeout =
          Option.map (fun ms -> ms /. 1000.0) attempt_timeout_ms;
      }
    in
    let workload =
      Loadgen.workload ~seed:(Int64.of_int seed) ~distinct_nets ~slack
        ?deadline_ms ~requests process
    in
    match (fetch_stats connect, fetch_metrics connect) with
    | Error e, _ | _, Error e ->
        Printf.eprintf "rip_loadgen: cannot reach the daemon: %s\n" e;
        1
    | Ok before, Ok metrics_before ->
        let results =
          List.init passes (fun pass ->
              let label =
                if passes = 1 then "pass"
                else if pass = 0 then "pass 1 (cold)"
                else Printf.sprintf "pass %d (warm)" (pass + 1)
              in
              let result =
                Loadgen.run ~connect ~connections ~policy
                  ~seed:(Int64.of_int (seed + pass))
                  workload
              in
              Printf.printf "--- %s ---\n%s" label (Loadgen.render result);
              result)
        in
        (match results with
        | cold :: (_ :: _ as rest) ->
            let warm = List.nth rest (List.length rest - 1) in
            Printf.printf
              "cold -> warm throughput: %.1f -> %.1f req/s (%.1fx)\n"
              cold.Loadgen.throughput warm.Loadgen.throughput
              (if cold.Loadgen.throughput > 0.0 then
                 warm.Loadgen.throughput /. cold.Loadgen.throughput
               else 0.0)
        | _ -> ());
        let totals =
          List.fold_left
            (fun t (r : Loadgen.result) ->
              {
                sent = t.sent + r.sent;
                fresh = t.fresh + r.solved_fresh;
                cached = t.cached + r.solved_cached;
                degraded = t.degraded + r.degraded;
                timeouts = t.timeouts + r.timeouts;
                errors = t.errors + r.errors;
                busy = t.busy + r.busy;
                transport = t.transport + r.transport_failures;
                retried_transport = t.retried_transport + r.retried_transport;
                retried_busy = t.retried_busy + r.retried_busy;
                retried_timeout = t.retried_timeout + r.retried_timeout;
              })
            {
              sent = 0;
              fresh = 0;
              cached = 0;
              degraded = 0;
              timeouts = 0;
              errors = 0;
              busy = 0;
              transport = 0;
              retried_transport = 0;
              retried_busy = 0;
              retried_timeout = 0;
            }
            results
        in
        let failures =
          List.exists
            (fun (r : Loadgen.result) ->
              r.transport_failures > 0 || r.errors > 0)
            results
        in
        let consistent =
          match fetch_stats connect with
          | Error e ->
              Printf.eprintf "rip_loadgen: cannot fetch closing STATS: %s\n" e;
              false
          | Ok after ->
              let counters_ok = print_consistency ~before ~after totals in
              print_server_now after;
              counters_ok
        in
        let percentiles_ok =
          match fetch_metrics connect with
          | Error e ->
              Printf.eprintf
                "rip_loadgen: cannot fetch closing METRICS: %s\n" e;
              false
          | Ok metrics_after ->
              print_percentile_reconciliation ~before:metrics_before
                ~after:metrics_after totals results
        in
        if failures || not consistent || not percentiles_ok then 1 else 0
  end

open Cmdliner

let socket_path =
  Arg.(
    value
    & opt string "rip_serviced.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the daemon (ignored with --port).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect over TCP instead.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Daemon host for --port.")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"SOLVE requests per pass.")

let connections =
  Arg.(
    value & opt int 4
    & info [ "connections"; "c" ] ~docv:"C"
        ~doc:"Concurrent closed-loop connections.")

let distinct_nets =
  Arg.(
    value & opt int 8
    & info [ "distinct-nets" ] ~docv:"K"
        ~doc:"Distinct nets in the workload; requests repeat over them \
              round-robin, so K far below N exercises the solve cache.")

let seed =
  Arg.(
    value & opt int 20050307
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Workload generator and retry-jitter seed.")

let slack =
  Arg.(
    value & opt float 1.3
    & info [ "slack" ] ~docv:"MULT"
        ~doc:"Delay budget as a multiple of each net's minimum delay.")

let passes =
  Arg.(
    value & opt int 1
    & info [ "passes" ] ~docv:"P"
        ~doc:"Replays of the identical workload; 2 gives a cold-vs-warm \
              cache comparison.")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Stamp every SOLVE with a DEADLINE header: past it the server \
              answers TIMEOUT or degrades to its analytic fallback tier.")

let retries =
  Arg.(
    value & opt int Client.default_retry_policy.attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:"Total attempts per request (>= 1); only transport failures, \
              BUSY and TIMEOUT are retried.")

let attempt_timeout_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "attempt-timeout-ms" ] ~docv:"MS"
        ~doc:"Per-attempt socket timeout; a stalled attempt counts as a \
              transport failure and is retried on a fresh connection.")

let backoff_ms =
  Arg.(
    value
    & opt float (Client.default_retry_policy.backoff_seconds *. 1000.0)
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Base of the full-jitter exponential backoff between retries.")

let main =
  Cmd.v
    (Cmd.info "rip_loadgen" ~version:"1.0.0"
       ~doc:"Closed-loop load generator and latency reporter for rip_serviced")
    Term.(
      const run_load $ socket_path $ port $ host $ requests $ connections
      $ distinct_nets $ seed $ slack $ passes $ deadline_ms $ retries
      $ attempt_timeout_ms $ backoff_ms)

let () = exit (Cmd.eval' main)
