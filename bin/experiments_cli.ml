(* experiments: regenerate the paper's tables and figures selectively.

     experiments_cli table1
     experiments_cli fig7 --granularity 40
     experiments_cli table2 --nets 8 --targets 10 *)

module Experiments = Rip_workload.Experiments
module Suite = Rip_workload.Suite
module Rip = Rip_core.Rip

let process = Rip_tech.Process.default_180nm

let print_telemetry telemetry =
  Printf.printf "(%s)\n" (Fmt.str "%a" Rip_engine.Telemetry.pp telemetry)

(* A sweep whose cells failed must not exit 0: print every typed error and
   report failure, same contract as rip_cli solve. *)
let exit_status_of_runs runs =
  let failures =
    List.concat_map
      (fun (run : Experiments.net_run) ->
        List.filter_map
          (fun (cell : Experiments.cell) ->
            match cell.Experiments.rip with
            | Error e ->
                Some
                  ( run.Experiments.net.Rip_net.Net.name,
                    cell.Experiments.budget,
                    e )
            | Ok _ -> None)
          run.Experiments.cells)
      runs
  in
  List.iter
    (fun (net, budget, e) ->
      Fmt.epr "error: %s (budget %.2f ps): %a@." net (budget *. 1e12)
        Rip.pp_error e)
    failures;
  if failures = [] then 0 else 1

(* Only the DP options deviate from the defaults; None keeps the sweep's
   default config so results are byte-identical when the flag is absent. *)
let config_of_backend = function
  | None -> None
  | Some backend ->
      Some
        {
          Rip_core.Config.default with
          Rip_core.Config.dp =
            {
              Rip_core.Config.default.Rip_core.Config.dp with
              Rip_core.Config.backend = backend;
            };
        }

let table1_run nets targets jobs dp_backend =
  let nets = Suite.nets ~count:nets () in
  let runs, telemetry =
    Experiments.run_suite_stats ?jobs ~granularities:[ 10.0; 20.0; 40.0 ]
      ~nets ~targets_per_net:targets
      ?config:(config_of_backend dp_backend)
      process
  in
  print_string (Experiments.render_table1 (Experiments.table1 runs));
  print_telemetry telemetry;
  exit_status_of_runs runs

let fig7_run nets targets granularity jobs dp_backend =
  let nets = Suite.nets ~count:nets () in
  let runs, telemetry =
    Experiments.run_suite_stats ?jobs ~granularities:[ granularity ] ~nets
      ~targets_per_net:targets
      ?config:(config_of_backend dp_backend)
      process
  in
  print_string
    (Experiments.render_fig7 ~granularity
       (Experiments.fig7 ~granularity runs));
  print_telemetry telemetry;
  exit_status_of_runs runs

let table2_run nets targets jobs dp_backend =
  let nets = Suite.nets ~count:nets () in
  print_string
    (Experiments.render_table2
       (Experiments.table2 ?jobs ~nets ~targets_per_net:targets
          ?config:(config_of_backend dp_backend)
          process));
  0

open Cmdliner

let nets =
  Arg.(
    value & opt int Suite.default_count
    & info [ "nets" ] ~docv:"N" ~doc:"Number of suite nets to sweep.")

let targets =
  Arg.(
    value & opt int 20
    & info [ "targets" ] ~docv:"K" ~doc:"Timing targets per net (max 20).")

let granularity =
  Arg.(
    value & opt float 40.0
    & info [ "granularity"; "g" ] ~docv:"G"
        ~doc:"Baseline width granularity in u (Figure 7 uses 10 and 40).")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the sweep (default: the machine's \
              recommended domain count, except table2 which runs \
              sequentially for trustworthy runtime columns).")

let dp_backend =
  let backends =
    [
      ("reference", Rip_dp.Power_dp.Reference);
      ("fast", Rip_dp.Power_dp.Fast);
      ("auto", Rip_dp.Power_dp.Auto);
    ]
  in
  Arg.(
    value
    & opt (some (enum backends)) None
    & info [ "dp-backend" ] ~docv:"BACKEND"
        ~doc:
          "Power-DP backend for the RIP cells and baselines: \
           $(b,reference), $(b,fast) (bit-identical results) or \
           $(b,auto). Defaults to the solver config's choice (auto).")

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1")
    Term.(const table1_run $ nets $ targets $ jobs $ dp_backend)

let fig7_cmd =
  Cmd.v (Cmd.info "fig7" ~doc:"Reproduce one Figure 7 series")
    Term.(const fig7_run $ nets $ targets $ granularity $ jobs $ dp_backend)

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table 2 (runtime-sensitive)")
    Term.(const table2_run $ nets $ targets $ jobs $ dp_backend)

let main =
  Cmd.group
    (Cmd.info "experiments_cli" ~version:"1.0.0"
       ~doc:"Reproduce the RIP paper's evaluation artefacts")
    [ table1_cmd; fig7_cmd; table2_cmd ]

let () = exit (Cmd.eval' main)
