(* Unit and property tests for Rip_tech. *)

module Repeater_model = Rip_tech.Repeater_model
module Layer = Rip_tech.Layer
module Power_model = Rip_tech.Power_model
module Process = Rip_tech.Process

let check_float = Alcotest.(check (float 1e-12))
let qcheck = QCheck_alcotest.to_alcotest
let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f

let model = Repeater_model.create ~rs:10000.0 ~co:2e-15 ~cp:1e-15

let test_repeater_scaling () =
  check_float "resistance halves" 5000.0 (Repeater_model.output_resistance model 2.0);
  check_float "input cap doubles" 4e-15 (Repeater_model.input_capacitance model 2.0);
  check_float "output cap doubles" 2e-15 (Repeater_model.output_capacitance model 2.0);
  check_float "intrinsic" 1e-11 (Repeater_model.intrinsic_delay model)

let test_repeater_validation () =
  invalid "negative rs" (fun () ->
      ignore (Repeater_model.create ~rs:(-1.0) ~co:1e-15 ~cp:1e-15));
  invalid "zero co" (fun () ->
      ignore (Repeater_model.create ~rs:1.0 ~co:0.0 ~cp:1e-15));
  invalid "zero width" (fun () ->
      ignore (Repeater_model.output_resistance model 0.0));
  invalid "negative width" (fun () ->
      ignore (Repeater_model.input_capacitance model (-3.0)))

let test_layer_defaults () =
  Alcotest.(check string) "m4 name" "metal4" Layer.metal4.Layer.name;
  Alcotest.(check string) "m5 name" "metal5" Layer.metal5.Layer.name;
  Alcotest.(check bool) "m5 less resistive" true
    (Layer.metal5.Layer.resistance_per_um
    < Layer.metal4.Layer.resistance_per_um);
  Alcotest.(check bool) "distinct" false (Layer.equal Layer.metal4 Layer.metal5)

let test_layer_validation () =
  invalid "bad r" (fun () ->
      ignore
        (Layer.create ~name:"x" ~resistance_per_um:0.0
           ~capacitance_per_um:1e-15))

let power = Power_model.default_180nm

let test_power_validation () =
  invalid "activity > 1" (fun () ->
      ignore
        (Power_model.create ~vdd:1.8 ~frequency:1e9 ~activity:1.5
           ~leakage_per_unit_width:0.0));
  invalid "bad vdd" (fun () ->
      ignore
        (Power_model.create ~vdd:0.0 ~frequency:1e9 ~activity:0.5
           ~leakage_per_unit_width:0.0));
  invalid "negative width" (fun () ->
      ignore (Power_model.repeater_power power ~repeater:model ~total_width:(-1.0)))

let test_dynamic_power_formula () =
  let p = Power_model.dynamic_power power ~capacitance:1e-12 in
  (* alpha vdd^2 f C = 0.15 * 3.24 * 5e8 * 1e-12 *)
  Alcotest.(check (float 1e-9)) "formula" (0.15 *. 3.24 *. 5e8 *. 1e-12) p

let test_gamma_consistency () =
  let gamma = Power_model.width_equivalent_constant power ~repeater:model in
  let direct = Power_model.repeater_power power ~repeater:model ~total_width:37.0 in
  Alcotest.(check (float 1e-15)) "gamma * width" (gamma *. 37.0) direct

let prop_power_linear_in_width =
  QCheck.Test.make ~name:"repeater power is linear in total width" ~count:200
    QCheck.(pair (float_range 1.0 500.0) (float_range 1.0 500.0))
    (fun (w1, w2) ->
      let p w = Power_model.repeater_power power ~repeater:model ~total_width:w in
      Float.abs (p (w1 +. w2) -. (p w1 +. p w2)) < 1e-12)

let process = Process.default_180nm

let test_process_lookup () =
  (match Process.layer_by_name process "metal4" with
  | Some l -> Alcotest.(check string) "found" "metal4" l.Layer.name
  | None -> Alcotest.fail "metal4 missing");
  Alcotest.(check bool) "absent layer" true
    (Process.layer_by_name process "poly" = None)

let test_process_validation () =
  invalid "no layers" (fun () ->
      ignore
        (Process.create ~name:"x" ~repeater:model ~layers:[] ~power))

let test_optimal_formulas () =
  (* The calibration contract documented in DESIGN.md: optimal width above
     the 100u baseline cap, within the 400u library; spacing around 2 mm. *)
  List.iter
    (fun layer ->
      let w = Process.optimal_uniform_width process layer in
      let s = Process.optimal_uniform_spacing process layer in
      Alcotest.(check bool) "wopt in (100,400)" true (w > 100.0 && w < 400.0);
      Alcotest.(check bool) "spacing in (1,3)mm" true
        (s > 1000.0 && s < 3000.0))
    process.Process.layers

let test_optimal_width_is_stationary () =
  (* For a uniform line, the closed form should beat nearby widths on the
     per-unit-length repeated delay r*c/2 + (Rs c / w + r Co w) / spacing
     ... checked through the simpler criterion: the derivative term
     Rs*c = w^2 * r * Co at the optimum. *)
  let layer = Layer.metal4 in
  let w = Process.optimal_uniform_width process layer in
  let lhs = process.Process.repeater.Repeater_model.rs *. layer.Layer.capacitance_per_um in
  let rhs =
    w *. w *. layer.Layer.resistance_per_um
    *. process.Process.repeater.Repeater_model.co
  in
  Alcotest.(check bool) "stationarity" true
    (Float.abs (lhs -. rhs) /. lhs < 1e-9)

let suite =
  [
    ( "tech.repeater_model",
      [
        Alcotest.test_case "scaling" `Quick test_repeater_scaling;
        Alcotest.test_case "validation" `Quick test_repeater_validation;
      ] );
    ( "tech.layer",
      [
        Alcotest.test_case "defaults" `Quick test_layer_defaults;
        Alcotest.test_case "validation" `Quick test_layer_validation;
      ] );
    ( "tech.power_model",
      [
        Alcotest.test_case "validation" `Quick test_power_validation;
        Alcotest.test_case "dynamic power" `Quick test_dynamic_power_formula;
        Alcotest.test_case "gamma consistency" `Quick test_gamma_consistency;
        qcheck prop_power_linear_in_width;
      ] );
    ( "tech.process",
      [
        Alcotest.test_case "layer lookup" `Quick test_process_lookup;
        Alcotest.test_case "validation" `Quick test_process_validation;
        Alcotest.test_case "calibration contract" `Quick test_optimal_formulas;
        Alcotest.test_case "optimal width stationarity" `Quick
          test_optimal_width_is_stationary;
      ] );
  ]
