(* Shared generators and reference implementations for the test suite. *)

module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry

let process = Rip_tech.Process.default_180nm
let repeater = process.Rip_tech.Process.repeater

(* --- Random nets -------------------------------------------------------- *)

let segment_gen =
  QCheck.Gen.(
    let* length = float_range 200.0 3000.0 in
    let* r = float_range 0.02 0.2 in
    let* c = float_range 0.05 0.6 in
    return
      (Segment.create ~length ~resistance_per_um:r
         ~capacitance_per_um:(c *. 1e-15) ()))

let net_gen ?(with_zone = true) () =
  QCheck.Gen.(
    let* segments = list_size (int_range 1 8) segment_gen in
    let* segments = return (if segments = [] then [ Segment.of_layer Rip_tech.Layer.metal4 ~length:1000.0 ] else segments) in
    let total =
      List.fold_left (fun acc s -> acc +. s.Segment.length) 0.0 segments
    in
    let* driver_width = float_range 10.0 120.0 in
    let* receiver_width = float_range 10.0 120.0 in
    let* zones =
      if with_zone then
        let* use = bool in
        if use && total > 400.0 then
          let* zlen = float_range 50.0 (0.35 *. total) in
          let* zstart = float_range 0.0 (total -. zlen) in
          return [ Zone.create ~z_start:zstart ~z_end:(zstart +. zlen) ]
        else return []
      else return []
    in
    return (Net.create ~segments ~zones ~driver_width ~receiver_width ()))

let net_arb ?with_zone () =
  QCheck.make ~print:(Fmt.str "%a" Net.pp) (net_gen ?with_zone ())

(* A position pair 0 <= a <= b <= L for a given net. *)
let span_gen net =
  QCheck.Gen.(
    let length = Net.total_length net in
    let* x = float_range 0.0 length in
    let* y = float_range 0.0 length in
    return (Float.min x y, Float.max x y))

let net_with_span_arb ?with_zone () =
  let gen =
    QCheck.Gen.(
      let* net = net_gen ?with_zone () in
      let* span = span_gen net in
      return (net, span))
  in
  QCheck.make
    ~print:(fun (net, (a, b)) -> Fmt.str "%a span (%g, %g)" Net.pp net a b)
    gen

(* --- Brute-force wire integrals (piecewise midpoint sums) ---------------- *)

(* Midpoint sums, split at segment boundaries so each sub-interval sees a
   single segment: the integrands are at most linear per segment, which the
   midpoint rule integrates exactly. *)
let integrate net ~a ~b f =
  if b <= a then 0.0
  else begin
    let geometry = Geometry.of_net net in
    let cuts =
      List.filter (fun x -> x > a && x < b) (Geometry.boundaries geometry)
    in
    let points = (a :: cuts) @ [ b ] in
    let rec pieces acc = function
      | x :: (y :: _ as rest) -> pieces ((x, y) :: acc) rest
      | [ _ ] | [] -> List.rev acc
    in
    List.fold_left
      (fun total (x, y) ->
        let steps = 200 in
        let h = (y -. x) /. float_of_int steps in
        let acc = ref 0.0 in
        for i = 0 to steps - 1 do
          let t = x +. ((float_of_int i +. 0.5) *. h) in
          acc := !acc +. (f geometry t *. h)
        done;
        total +. !acc)
      0.0 (pieces [] points)
  end

let unit_r geometry x =
  fst (Geometry.unit_rc_at geometry Geometry.Right x)

let unit_c geometry x =
  snd (Geometry.unit_rc_at geometry Geometry.Right x)

let brute_resistance net ~a ~b = integrate net ~a ~b unit_r
let brute_capacitance net ~a ~b = integrate net ~a ~b unit_c

let brute_wire_elmore net ~a ~b =
  let geometry = Geometry.of_net net in
  let cap_to_b x = Geometry.capacitance_between geometry x b in
  integrate net ~a ~b (fun g x -> unit_r g x *. cap_to_b x)

(* Substring test for error-message assertions. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* Relative closeness for physical quantities. *)
let close ?(rel = 1e-3) expected actual =
  let scale = Float.max (Float.abs expected) (Float.abs actual) in
  scale = 0.0 || Float.abs (expected -. actual) /. scale <= rel
