(* Unit and property tests for Rip_elmore. *)

module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Stage = Rip_elmore.Stage
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Rc_ladder = Rip_elmore.Rc_ladder

let qcheck = QCheck_alcotest.to_alcotest
let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f
let repeater = Helpers.repeater

let uniform_net () =
  Net.uniform Rip_tech.Layer.metal4 ~length:6000.0 ~segment_count:3
    ~driver_width:20.0 ~receiver_width:40.0

(* --- Rc_ladder ------------------------------------------------------------ *)

let test_ladder_single_rc () =
  (* One section, all capacitance after the resistor half/half: the Elmore
     delay is R*(C/2) + R_total*(C/2 + C_load). *)
  let d =
    Rc_ladder.ladder_delay ~driver_resistance:100.0
      ~sections:[ { Rc_ladder.series_resistance = 50.0; shunt_capacitance = 2e-12 } ]
      ~load_capacitance:1e-12
  in
  (* 100*1e-12 + 150*1e-12 + 150*1e-12 *)
  Alcotest.(check (float 1e-18)) "pi section" 4e-10 d

let test_ladder_no_sections () =
  let d =
    Rc_ladder.ladder_delay ~driver_resistance:100.0 ~sections:[]
      ~load_capacitance:1e-12
  in
  Alcotest.(check (float 1e-20)) "pure RC" 1e-10 d

(* --- Stage vs discretised ladder ------------------------------------------ *)

let prop_stage_matches_ladder =
  QCheck.Test.make ~name:"closed-form stage delay matches discretised ladder"
    ~count:40
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      QCheck.assume (b -. a > 10.0);
      let geometry = Geometry.of_net net in
      let closed =
        Stage.delay repeater geometry ~driver_pos:a ~driver_width:30.0
          ~load_pos:b ~load_width:60.0
      in
      let discretised =
        Rc_ladder.stage_delay_discretised repeater geometry ~driver_pos:a
          ~driver_width:30.0 ~load_pos:b ~load_width:60.0 ~lumps_per_um:2.0
      in
      Helpers.close ~rel:1e-3 closed discretised)

let test_stage_zero_length () =
  let net = uniform_net () in
  let geometry = Geometry.of_net net in
  let d =
    Stage.delay repeater geometry ~driver_pos:1000.0 ~driver_width:50.0
      ~load_pos:1000.0 ~load_width:60.0
  in
  (* No wire: intrinsic + Rs/w * Co*wl. *)
  let expected =
    Rip_tech.Repeater_model.intrinsic_delay repeater
    +. (Rip_tech.Repeater_model.output_resistance repeater 50.0
       *. Rip_tech.Repeater_model.input_capacitance repeater 60.0)
  in
  Alcotest.(check (float 1e-18)) "no wire" expected d

let test_stage_ordering () =
  let net = uniform_net () in
  let geometry = Geometry.of_net net in
  invalid "reversed" (fun () ->
      ignore
        (Stage.delay repeater geometry ~driver_pos:2000.0 ~driver_width:10.0
           ~load_pos:1000.0 ~load_width:10.0))

let prop_stage_monotone_in_driver_width =
  QCheck.Test.make ~name:"stage delay shrinks as the driver widens" ~count:100
    (QCheck.make (Helpers.net_gen ~with_zone:false ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let d w =
        Stage.delay repeater geometry ~driver_pos:0.0 ~driver_width:w
          ~load_pos:length ~load_width:40.0
      in
      d 20.0 > d 40.0 && d 40.0 > d 80.0)

let prop_stage_monotone_in_load_width =
  QCheck.Test.make ~name:"stage delay grows with the load width" ~count:100
    (QCheck.make (Helpers.net_gen ~with_zone:false ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let d w =
        Stage.delay repeater geometry ~driver_pos:0.0 ~driver_width:40.0
          ~load_pos:length ~load_width:w
      in
      d 20.0 < d 40.0 && d 40.0 < d 80.0)

(* --- Two_moment (D2M) ------------------------------------------------------ *)

let test_d2m_single_pole_exact () =
  (* For a single-pole circuit (driver R into lumped C, no wire) D2M is
     exactly ln 2 * RC while Elmore reports RC. *)
  let m1, m2 =
    Rc_ladder.ladder_moments ~driver_resistance:1000.0 ~sections:[]
      ~load_capacitance:1e-12
  in
  Alcotest.(check (float 1e-18)) "m1 = RC" 1e-9 m1;
  Alcotest.(check (float 1e-24)) "m2 = (RC)^2" 1e-18 m2

let test_d2m_moments_match_elmore () =
  let net = uniform_net () in
  let geometry = Geometry.of_net net in
  let sections =
    Rc_ladder.wire_sections geometry ~driver_pos:0.0 ~load_pos:6000.0
      ~lumps_per_um:0.5
  in
  let m1, _ =
    Rc_ladder.ladder_moments ~driver_resistance:500.0 ~sections
      ~load_capacitance:5e-14
  in
  let elmore =
    Rc_ladder.ladder_delay ~driver_resistance:500.0 ~sections
      ~load_capacitance:5e-14
  in
  Alcotest.(check bool) "m1 is the Elmore delay" true
    (Helpers.close ~rel:1e-9 m1 elmore)

let prop_d2m_bounded_by_elmore =
  QCheck.Test.make
    ~name:"D2M lies between ln2*Elmore and Elmore on random stages"
    ~count:60
    (Helpers.net_with_span_arb ~with_zone:false ())
    (fun (net, (a, b)) ->
      QCheck.assume (b -. a > 10.0);
      let geometry = Geometry.of_net net in
      let intrinsic = Rip_tech.Repeater_model.intrinsic_delay repeater in
      let d2m =
        Rip_elmore.Two_moment.stage_delay repeater geometry ~driver_pos:a
          ~driver_width:30.0 ~load_pos:b ~load_width:60.0 ()
        -. intrinsic
      in
      let elmore =
        Stage.delay repeater geometry ~driver_pos:a ~driver_width:30.0
          ~load_pos:b ~load_width:60.0
        -. intrinsic
      in
      d2m <= elmore *. (1.0 +. 1e-6)
      && d2m >= 0.6 *. elmore (* ln 2 with discretisation headroom *))

let prop_d2m_total_orders_like_elmore =
  QCheck.Test.make
    ~name:"D2M totals stay within (ln2, 1] of Elmore totals" ~count:40
    (QCheck.make (Helpers.net_gen ~with_zone:false ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let solution =
        Solution.create [ (0.4 *. length, 60.0); (0.8 *. length, 90.0) ]
      in
      let ratio =
        Rip_elmore.Two_moment.elmore_ratio repeater geometry solution
      in
      ratio > 0.6 && ratio <= 1.0 +. 1e-9)

(* --- Solution ----------------------------------------------------------- *)

let test_solution_sorting () =
  let s = Solution.create [ (2000.0, 30.0); (500.0, 20.0) ] in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 500.0; 2000.0 ]
    (Solution.positions s);
  Alcotest.(check (float 1e-9)) "total width" 50.0 (Solution.total_width s);
  Alcotest.(check int) "count" 2 (Solution.count s)

let test_solution_validation () =
  invalid "duplicate" (fun () ->
      ignore (Solution.create [ (100.0, 10.0); (100.0, 20.0) ]));
  invalid "bad width" (fun () -> ignore (Solution.create [ (100.0, 0.0) ]));
  invalid "negative position" (fun () ->
      ignore (Solution.create [ (-5.0, 10.0) ]))

let test_solution_legal () =
  let net =
    Net.create
      ~segments:[ Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:3000.0 ]
      ~zones:[ Zone.create ~z_start:1000.0 ~z_end:2000.0 ]
      ~driver_width:20.0 ~receiver_width:20.0 ()
  in
  Alcotest.(check bool) "outside zone" true
    (Solution.legal net (Solution.create [ (500.0, 10.0) ]));
  Alcotest.(check bool) "inside zone" false
    (Solution.legal net (Solution.create [ (1500.0, 10.0) ]));
  Alcotest.(check bool) "zone edge" true
    (Solution.legal net (Solution.create [ (1000.0, 10.0) ]));
  Alcotest.(check bool) "empty" true (Solution.legal net Solution.empty)

(* --- Delay ----------------------------------------------------------------- *)

let test_delay_stage_count () =
  let net = uniform_net () in
  let geometry = Geometry.of_net net in
  let solution = Solution.create [ (2000.0, 50.0); (4000.0, 50.0) ] in
  Alcotest.(check int) "n+1 stages" 3
    (List.length (Delay.stage_delays repeater geometry solution));
  Alcotest.(check int) "bare wire one stage" 1
    (List.length (Delay.stage_delays repeater geometry Solution.empty))

let prop_total_is_sum_of_stages =
  QCheck.Test.make ~name:"total delay is the sum of stage delays" ~count:100
    (QCheck.make (Helpers.net_gen ~with_zone:false ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let solution =
        Solution.create [ (0.3 *. length, 40.0); (0.7 *. length, 70.0) ]
      in
      let total = Delay.total repeater geometry solution in
      let sum =
        List.fold_left ( +. ) 0.0 (Delay.stage_delays repeater geometry solution)
      in
      Helpers.close ~rel:1e-12 total sum)

let test_repeater_helps_long_wire () =
  (* On a long unbuffered line, a well-placed repeater must reduce delay. *)
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:12000.0 ~segment_count:6
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  let repeated =
    Delay.total repeater geometry (Solution.create [ (6000.0, 150.0) ])
  in
  Alcotest.(check bool) "repeater helps" true (repeated < bare)

let test_slack_and_budget () =
  let net = uniform_net () in
  let geometry = Geometry.of_net net in
  let d = Delay.total repeater geometry Solution.empty in
  Alcotest.(check bool) "meets generous budget" true
    (Delay.meets_budget repeater geometry Solution.empty ~budget:(2.0 *. d));
  Alcotest.(check bool) "misses tight budget" false
    (Delay.meets_budget repeater geometry Solution.empty ~budget:(0.5 *. d));
  Alcotest.(check bool) "meets its own delay" true
    (Delay.meets_budget repeater geometry Solution.empty ~budget:d);
  Alcotest.(check (float 1e-15)) "slack" d
    (Delay.slack repeater geometry Solution.empty ~budget:(2.0 *. d))

let suite =
  [
    ( "elmore.rc_ladder",
      [
        Alcotest.test_case "single pi section" `Quick test_ladder_single_rc;
        Alcotest.test_case "no sections" `Quick test_ladder_no_sections;
      ] );
    ( "elmore.stage",
      [
        Alcotest.test_case "zero-length stage" `Quick test_stage_zero_length;
        Alcotest.test_case "ordering enforced" `Quick test_stage_ordering;
        qcheck prop_stage_matches_ladder;
        qcheck prop_stage_monotone_in_driver_width;
        qcheck prop_stage_monotone_in_load_width;
      ] );
    ( "elmore.two_moment",
      [
        Alcotest.test_case "single pole exact" `Quick
          test_d2m_single_pole_exact;
        Alcotest.test_case "m1 equals Elmore" `Quick
          test_d2m_moments_match_elmore;
        qcheck prop_d2m_bounded_by_elmore;
        qcheck prop_d2m_total_orders_like_elmore;
      ] );
    ( "elmore.solution",
      [
        Alcotest.test_case "sorting" `Quick test_solution_sorting;
        Alcotest.test_case "validation" `Quick test_solution_validation;
        Alcotest.test_case "zone legality" `Quick test_solution_legal;
      ] );
    ( "elmore.delay",
      [
        Alcotest.test_case "stage count" `Quick test_delay_stage_count;
        Alcotest.test_case "repeater helps long wire" `Quick
          test_repeater_helps_long_wire;
        Alcotest.test_case "slack and budget" `Quick test_slack_and_budget;
        qcheck prop_total_is_sum_of_stages;
      ] );
  ]
