(* Unit and property tests for Rip_refine: the width solver (Eqs. 5, 8),
   location derivatives (Eqs. 17, 18), REFINE (Fig. 5) and the analytical
   minimum-delay solver. *)

module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Width_solver = Rip_refine.Width_solver
module Movement = Rip_refine.Movement
module Refine = Rip_refine.Refine
module Min_delay_analytic = Rip_refine.Min_delay_analytic

let qcheck = QCheck_alcotest.to_alcotest
let repeater = Helpers.repeater

(* A net plus a feasible set of strictly increasing interior positions. *)
let positioned_net_gen =
  QCheck.Gen.(
    let* net = Helpers.net_gen ~with_zone:false () in
    let length = Rip_net.Net.total_length net in
    let* n = int_range 1 4 in
    let* offsets = list_repeat n (float_range 0.05 0.95) in
    let sorted = List.sort_uniq Float.compare offsets in
    let positions = List.map (fun o -> o *. length) sorted in
    let rec spaced = function
      | a :: (b :: _ as rest) -> b -. a > 5.0 && spaced rest
      | [ _ ] | [] -> true
    in
    if spaced positions && positions <> [] then
      return (net, Array.of_list positions)
    else return (net, [| 0.5 *. length |]))

let positioned_net_arb =
  QCheck.make
    ~print:(fun (net, positions) ->
      Fmt.str "%a positions=%a" Rip_net.Net.pp net
        Fmt.(Dump.array float)
        positions)
    positioned_net_gen

let budget_for geometry positions slack =
  let sizing = Width_solver.min_delay_sizing geometry repeater ~positions in
  slack *. Width_solver.tau_total geometry repeater ~positions ~widths:sizing

(* --- Width solver ------------------------------------------------------- *)

let prop_width_solver_hits_budget =
  QCheck.Test.make ~name:"width solver meets the budget with equality (Eq. 5)"
    ~count:60 positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let budget = budget_for geometry positions 1.4 in
      match Width_solver.solve geometry repeater ~positions ~budget with
      | None -> false
      | Some r ->
          Helpers.close ~rel:1e-6 budget r.Width_solver.delay
          && Helpers.close ~rel:1e-6 budget
               (Width_solver.tau_total geometry repeater ~positions
                  ~widths:r.Width_solver.widths))

let prop_width_solver_stationary =
  (* Eq. (8) via central finite differences: at the optimum,
     1 + lambda * d tau / d w_i = 0 for every i. *)
  QCheck.Test.make ~name:"width solver satisfies Eq. (8) stationarity"
    ~count:60 positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let budget = budget_for geometry positions 1.5 in
      match Width_solver.solve geometry repeater ~positions ~budget with
      | None -> false
      | Some r ->
          let n = Array.length positions in
          let ok = ref true in
          for i = 0 to n - 1 do
            let h = 1e-4 *. r.Width_solver.widths.(i) in
            let perturbed sign =
              let w = Array.copy r.Width_solver.widths in
              w.(i) <- w.(i) +. (sign *. h);
              Width_solver.tau_total geometry repeater ~positions ~widths:w
            in
            let gradient = (perturbed 1.0 -. perturbed (-1.0)) /. (2.0 *. h) in
            let residual = 1.0 +. (r.Width_solver.lambda *. gradient) in
            if Float.abs residual > 1e-3 then ok := false
          done;
          !ok)

let prop_width_solver_monotone_in_budget =
  QCheck.Test.make ~name:"looser budgets need less total width" ~count:60
    positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let tight = budget_for geometry positions 1.2 in
      let loose = budget_for geometry positions 1.8 in
      match
        ( Width_solver.solve geometry repeater ~positions ~budget:tight,
          Width_solver.solve geometry repeater ~positions ~budget:loose )
      with
      | Some a, Some b ->
          b.Width_solver.total_width <= a.Width_solver.total_width +. 1e-9
      | _, _ -> false)

let prop_width_solver_infeasible =
  QCheck.Test.make ~name:"budgets below the sizing bound are rejected"
    ~count:60 positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let bound = budget_for geometry positions 1.0 in
      Width_solver.solve geometry repeater ~positions ~budget:(0.95 *. bound)
      = None)

let prop_newton_agrees_with_gauss_seidel =
  QCheck.Test.make ~name:"Newton and Gauss-Seidel backends agree" ~count:40
    positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let budget = budget_for geometry positions 1.4 in
      match
        ( Width_solver.solve ~backend:Width_solver.Gauss_seidel geometry
            repeater ~positions ~budget,
          Width_solver.solve ~backend:Width_solver.Newton geometry repeater
            ~positions ~budget )
      with
      | Some gs, Some newton ->
          Helpers.close ~rel:1e-4 gs.Width_solver.total_width
            newton.Width_solver.total_width
      | _, _ -> false)

let test_width_solver_empty_positions () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:2000.0 ~segment_count:2
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  (match Width_solver.solve geometry repeater ~positions:[||] ~budget:(2.0 *. bare) with
  | Some r ->
      Alcotest.(check int) "no widths" 0 (Array.length r.Width_solver.widths)
  | None -> Alcotest.fail "bare wire meets a generous budget");
  Alcotest.(check bool) "bare wire misses a tight budget" true
    (Width_solver.solve geometry repeater ~positions:[||]
       ~budget:(0.5 *. bare)
    = None)

let test_width_solver_rejects_bad_positions () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:2000.0 ~segment_count:2
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f in
  invalid "unordered" (fun () ->
      ignore
        (Width_solver.solve geometry repeater ~positions:[| 900.0; 300.0 |]
           ~budget:1e-9));
  invalid "outside" (fun () ->
      ignore
        (Width_solver.solve geometry repeater ~positions:[| 2500.0 |]
           ~budget:1e-9))

let prop_bounded_sizing_in_bounds =
  QCheck.Test.make ~name:"bounded min-delay sizing respects its bounds"
    ~count:60 positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let widths =
        Width_solver.min_delay_sizing_bounded geometry repeater ~positions
          ~min_width:10.0 ~max_width:400.0
      in
      Array.for_all (fun w -> w >= 10.0 -. 1e-9 && w <= 400.0 +. 1e-9) widths)

let prop_tau_total_matches_delay =
  QCheck.Test.make
    ~name:"width solver tau_total equals the Elmore evaluator" ~count:60
    positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let widths = Array.map (fun _ -> 55.0) positions in
      let via_solver =
        Width_solver.tau_total geometry repeater ~positions ~widths
      in
      let solution =
        Solution.create
          (List.combine (Array.to_list positions) (Array.to_list widths))
      in
      Helpers.close ~rel:1e-9 via_solver (Delay.total repeater geometry solution))

(* --- Movement ------------------------------------------------------------- *)

let prop_movement_matches_finite_difference =
  QCheck.Test.make
    ~name:"location derivatives match finite differences (Eqs. 17-18)"
    ~count:60 positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let widths = Array.map (fun _ -> 60.0) positions in
      let derivatives =
        Movement.location_derivatives geometry repeater ~positions ~widths
      in
      let tau positions =
        Width_solver.tau_total geometry repeater ~positions ~widths
      in
      let boundaries = Geometry.boundaries geometry in
      let ok = ref true in
      Array.iteri
        (fun i d ->
          let h = 0.5 in
          (* A segment boundary strictly inside the probe makes the FD a
             blend of the two one-sided derivatives: skip those probes. *)
          let clear_of_boundaries =
            List.for_all
              (fun b ->
                Float.abs (b -. positions.(i)) > h +. 1e-9
                || Float.abs (b -. positions.(i)) < 1e-9)
              boundaries
          in
          let move sign =
            let p = Array.copy positions in
            p.(i) <- p.(i) +. (sign *. h);
            p
          in
          let lo = if i = 0 then 0.0 else positions.(i - 1) in
          let hi =
            if i = Array.length positions - 1 then length
            else positions.(i + 1)
          in
          if
            clear_of_boundaries
            && positions.(i) -. h > lo +. 1.0
            && positions.(i) +. h < hi -. 1.0
          then begin
            (* Central difference cancels the quadratic wire term.  Away
               from boundaries plus = minus; at an exact boundary the
               central FD sees the average of the two one-sided slopes. *)
            let central = (tau (move 1.0) -. tau (move (-1.0))) /. (2.0 *. h) in
            let expected = 0.5 *. (d.Movement.plus +. d.Movement.minus) in
            let r_unit, c_unit =
              Geometry.unit_rc_at geometry Geometry.Right positions.(i)
            in
            (* Tolerance floor from the curvature scale h * r * c. *)
            let scale =
              Float.max
                (Float.max (Float.abs central) (Float.abs expected))
                (h *. r_unit *. c_unit)
            in
            if Float.abs (central -. expected) /. scale > 0.02 then ok := false
          end)
        derivatives;
      !ok)

let test_movement_sides_equal_inside_segment () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:4000.0 ~segment_count:1
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let d =
    Movement.location_derivatives geometry repeater ~positions:[| 1234.5 |]
      ~widths:[| 80.0 |]
  in
  Alcotest.(check (float 1e-24)) "eq. 24" d.(0).Movement.plus
    d.(0).Movement.minus

let test_movement_sides_differ_at_boundary () =
  let net =
    Net.create
      ~segments:
        [
          Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:2000.0;
          Rip_net.Segment.of_layer Rip_tech.Layer.metal5 ~length:2000.0;
        ]
      ~zones:[] ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  let geometry = Geometry.of_net net in
  let d =
    Movement.location_derivatives geometry repeater ~positions:[| 2000.0 |]
      ~widths:[| 80.0 |]
  in
  Alcotest.(check bool) "one-sided derivatives differ" true
    (Float.abs (d.(0).Movement.plus -. d.(0).Movement.minus) > 0.0)

let test_preferred_direction () =
  let d plus minus = { Movement.plus; minus } in
  Alcotest.(check bool) "optimal stays" true
    (Movement.preferred_direction ~lambda:1.0 (d 1.0 (-1.0)) = Movement.Stay);
  Alcotest.(check bool) "negative plus moves down" true
    (Movement.preferred_direction ~lambda:1.0 (d (-1.0) (-2.0))
    = Movement.Downstream);
  Alcotest.(check bool) "positive minus moves up" true
    (Movement.preferred_direction ~lambda:1.0 (d 2.0 1.0) = Movement.Upstream);
  Alcotest.(check bool) "largest gain wins" true
    (Movement.preferred_direction ~lambda:1.0 (d (-1.0) 3.0)
    = Movement.Upstream)

(* --- REFINE ------------------------------------------------------------------ *)

let seed_solution positions = Solution.create (List.map (fun p -> (p, 80.0)) positions)

let prop_refine_never_worse_than_first_solve =
  QCheck.Test.make
    ~name:"REFINE's result never exceeds its initial total width" ~count:40
    positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let budget = budget_for geometry positions 1.4 in
      match
        Refine.run geometry repeater ~budget
          ~initial:(seed_solution (Array.to_list positions))
      with
      | None -> false
      | Some outcome ->
          outcome.Refine.total_width
          <= outcome.Refine.initial_total_width +. 1e-9)

let prop_refine_meets_budget =
  QCheck.Test.make ~name:"REFINE's result meets the budget" ~count:40
    positioned_net_arb
    (fun (net, positions) ->
      let geometry = Geometry.of_net net in
      let budget = budget_for geometry positions 1.4 in
      match
        Refine.run geometry repeater ~budget
          ~initial:(seed_solution (Array.to_list positions))
      with
      | None -> false
      | Some outcome ->
          outcome.Refine.delay <= budget *. (1.0 +. 1e-6)
          && Helpers.close ~rel:1e-6 budget outcome.Refine.delay)

let prop_refine_respects_zones =
  QCheck.Test.make ~name:"REFINE never parks a repeater inside a zone"
    ~count:60
    (QCheck.make (Helpers.net_gen ~with_zone:true ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let seed_positions =
        List.filter (Net.position_legal net)
          [ 0.3 *. length; 0.6 *. length ]
      in
      QCheck.assume (seed_positions <> []);
      let positions = Array.of_list seed_positions in
      let budget = budget_for geometry positions 1.5 in
      match
        Refine.run geometry repeater ~budget
          ~initial:(seed_solution seed_positions)
      with
      | None -> true
      | Some outcome -> Solution.legal net outcome.Refine.solution)

let test_refine_infeasible () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:8000.0 ~segment_count:4
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  Alcotest.(check bool) "impossible budget" true
    (Refine.run geometry repeater ~budget:1e-15
       ~initial:(seed_solution [ 4000.0 ])
    = None)

let test_refine_empty_initial () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:2000.0 ~segment_count:2
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  match Refine.run geometry repeater ~budget:(1.5 *. bare) ~initial:Solution.empty with
  | Some outcome ->
      Alcotest.(check int) "stays empty" 0 (Solution.count outcome.Refine.solution);
      Alcotest.(check bool) "converged" true outcome.Refine.converged
  | None -> Alcotest.fail "bare wire is feasible"

let test_refine_movement_reduces_width () =
  (* A deliberately bad seed (repeater near the driver on a uniform line)
     must improve by moving toward the middle. *)
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:10000.0 ~segment_count:5
      ~driver_width:20.0 ~receiver_width:20.0
  in
  let geometry = Geometry.of_net net in
  let budget = budget_for geometry [| 5000.0 |] 1.3 in
  match
    ( Refine.run geometry repeater ~budget ~initial:(seed_solution [ 1500.0 ]),
      Width_solver.solve geometry repeater ~positions:[| 1500.0 |] ~budget )
  with
  | Some outcome, Some stuck ->
      Alcotest.(check bool) "moved and improved" true
        (outcome.Refine.moves > 0
        && outcome.Refine.total_width < stuck.Width_solver.total_width)
  | _ -> Alcotest.fail "both solves should succeed"

(* --- Analytical minimum delay -------------------------------------------------- *)

let test_refine_zone_hopping () =
  (* A repeater seeded just left of a wide zone whose derivative pulls it
     right: vetoed by default, hops across with hop_zones. *)
  let net =
    Net.create
      ~segments:[ Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:10000.0 ]
      ~zones:[ Zone.create ~z_start:2100.0 ~z_end:2800.0 ]
      ~driver_width:20.0 ~receiver_width:20.0 ()
  in
  let geometry = Geometry.of_net net in
  let budget = budget_for geometry [| 5000.0 |] 1.3 in
  let hop_config =
    { Refine.default_config with Refine.hop_zones = true }
  in
  match
    ( Refine.run geometry repeater ~budget ~initial:(seed_solution [ 2050.0 ]),
      Refine.run ~config:hop_config geometry repeater ~budget
        ~initial:(seed_solution [ 2050.0 ]) )
  with
  | Some plain, Some hopping ->
      Alcotest.(check bool) "hop result legal" true
        (Solution.legal net hopping.Refine.solution);
      Alcotest.(check bool) "hopping never worse" true
        (hopping.Refine.total_width <= plain.Refine.total_width +. 1e-9)
  | _ -> Alcotest.fail "both runs should succeed"

let prop_refine_hopping_legal =
  QCheck.Test.make
    ~name:"zone hopping still never parks a repeater inside a zone"
    ~count:40
    (QCheck.make (Helpers.net_gen ~with_zone:true ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let seed_positions =
        List.filter (Net.position_legal net)
          [ 0.35 *. length; 0.65 *. length ]
      in
      QCheck.assume (seed_positions <> []);
      let positions = Array.of_list seed_positions in
      let budget = budget_for geometry positions 1.5 in
      let config = { Refine.default_config with Refine.hop_zones = true } in
      match
        Refine.run ~config geometry repeater ~budget
          ~initial:(seed_solution seed_positions)
      with
      | None -> true
      | Some outcome -> Solution.legal net outcome.Refine.solution)

let prop_analytic_min_beats_bare_wire =
  QCheck.Test.make ~name:"analytic tau_min never exceeds the bare-wire delay"
    ~count:40
    (QCheck.make (Helpers.net_gen ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let bare = Delay.total repeater geometry Solution.empty in
      Min_delay_analytic.tau_min geometry repeater <= bare +. 1e-15)

let prop_analytic_min_solution_consistent =
  QCheck.Test.make
    ~name:"analytic min-delay solution is legal and matches its delay"
    ~count:40
    (QCheck.make (Helpers.net_gen ()))
    (fun net ->
      let geometry = Geometry.of_net net in
      let r = Min_delay_analytic.solve geometry repeater in
      Solution.legal net r.Min_delay_analytic.solution
      && Helpers.close ~rel:1e-9 r.Min_delay_analytic.delay
           (Delay.total repeater geometry r.Min_delay_analytic.solution)
      && List.for_all
           (fun w -> w >= 10.0 -. 1e-9 && w <= 400.0 +. 1e-9)
           (Solution.widths r.Min_delay_analytic.solution))

let test_analytic_min_uses_repeaters_on_long_nets () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:15000.0 ~segment_count:6
      ~driver_width:20.0 ~receiver_width:40.0
  in
  let geometry = Geometry.of_net net in
  let r = Min_delay_analytic.solve geometry repeater in
  Alcotest.(check bool) "several repeaters" true
    (r.Min_delay_analytic.repeater_count >= 3)

let suite =
  [
    ( "refine.width_solver",
      [
        Alcotest.test_case "empty positions" `Quick
          test_width_solver_empty_positions;
        Alcotest.test_case "input validation" `Quick
          test_width_solver_rejects_bad_positions;
        qcheck prop_width_solver_hits_budget;
        qcheck prop_width_solver_stationary;
        qcheck prop_width_solver_monotone_in_budget;
        qcheck prop_width_solver_infeasible;
        qcheck prop_newton_agrees_with_gauss_seidel;
        qcheck prop_bounded_sizing_in_bounds;
        qcheck prop_tau_total_matches_delay;
      ] );
    ( "refine.movement",
      [
        Alcotest.test_case "Eq. 24 inside a segment" `Quick
          test_movement_sides_equal_inside_segment;
        Alcotest.test_case "sides differ at layer change" `Quick
          test_movement_sides_differ_at_boundary;
        Alcotest.test_case "direction rule" `Quick test_preferred_direction;
        qcheck prop_movement_matches_finite_difference;
      ] );
    ( "refine.refine",
      [
        Alcotest.test_case "infeasible budget" `Quick test_refine_infeasible;
        Alcotest.test_case "empty initial" `Quick test_refine_empty_initial;
        Alcotest.test_case "movement reduces width" `Quick
          test_refine_movement_reduces_width;
        Alcotest.test_case "zone hopping" `Quick test_refine_zone_hopping;
        qcheck prop_refine_hopping_legal;
        qcheck prop_refine_never_worse_than_first_solve;
        qcheck prop_refine_meets_budget;
        qcheck prop_refine_respects_zones;
      ] );
    ( "refine.min_delay_analytic",
      [
        Alcotest.test_case "long nets use repeaters" `Quick
          test_analytic_min_uses_repeaters_on_long_nets;
        qcheck prop_analytic_min_beats_bare_wire;
        qcheck prop_analytic_min_solution_consistent;
      ] );
  ]
