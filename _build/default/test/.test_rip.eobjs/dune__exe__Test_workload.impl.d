test/test_workload.ml: Alcotest Array Helpers List QCheck QCheck_alcotest Result Rip_core Rip_dp Rip_elmore Rip_net Rip_numerics Rip_tree Rip_workload String
