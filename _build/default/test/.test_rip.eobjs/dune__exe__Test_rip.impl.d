test/test_rip.ml: Alcotest List Test_core Test_dp Test_elmore Test_integration Test_net Test_numerics Test_refine Test_tech Test_tree Test_workload
