test/test_refine.ml: Alcotest Array Dump Float Fmt Helpers List QCheck QCheck_alcotest Rip_elmore Rip_net Rip_refine Rip_tech
