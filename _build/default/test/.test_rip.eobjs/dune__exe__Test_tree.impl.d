test/test_tree.ml: Alcotest Array Float Fmt Helpers List Printf QCheck QCheck_alcotest Rip_dp Rip_elmore Rip_net Rip_refine Rip_tech Rip_tree
