test/test_elmore.ml: Alcotest Helpers List QCheck QCheck_alcotest Rip_elmore Rip_net Rip_tech
