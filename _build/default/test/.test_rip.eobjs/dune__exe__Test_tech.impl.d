test/test_tech.ml: Alcotest Float List QCheck QCheck_alcotest Rip_tech
