test/test_core.ml: Alcotest Helpers List QCheck QCheck_alcotest Rip_core Rip_dp Rip_elmore Rip_net Rip_tech Rip_workload
