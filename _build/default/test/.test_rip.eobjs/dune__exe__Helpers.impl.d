test/helpers.ml: Float Fmt List QCheck Rip_net Rip_tech String
