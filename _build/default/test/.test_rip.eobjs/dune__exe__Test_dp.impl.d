test/test_dp.ml: Alcotest Dump Fmt Helpers List Option QCheck QCheck_alcotest Rip_dp Rip_elmore Rip_net Rip_tech
