test/test_net.ml: Alcotest Filename Gen Helpers List Printf QCheck QCheck_alcotest Rip_net Rip_tech Sys
