test/test_numerics.ml: Alcotest Array Float Gen Int64 List QCheck QCheck_alcotest Rip_numerics
