test/test_integration.ml: Alcotest Filename Helpers List Printf Rip_core Rip_dp Rip_elmore Rip_net Rip_numerics Rip_refine Rip_tech Rip_workload Sys
