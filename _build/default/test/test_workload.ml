(* Unit tests for Rip_workload: the Section-6 generator, fixed suite,
   baselines, table rendering and experiment arithmetic. *)

module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Prng = Rip_numerics.Prng
module Netgen = Rip_workload.Netgen
module Suite = Rip_workload.Suite
module Baseline = Rip_workload.Baseline
module Table = Rip_workload.Table
module Experiments = Rip_workload.Experiments
module Repeater_library = Rip_dp.Repeater_library
module Power_dp = Rip_dp.Power_dp
module Solution = Rip_elmore.Solution
module Rip = Rip_core.Rip

let qcheck = QCheck_alcotest.to_alcotest
let process = Helpers.process

(* --- Netgen ---------------------------------------------------------------- *)

let test_netgen_deterministic () =
  let rng1 = Prng.create 99L and rng2 = Prng.create 99L in
  let a = Netgen.generate rng1 ~index:3 in
  let b = Netgen.generate rng2 ~index:3 in
  Alcotest.(check bool) "equal nets" true (Net.equal a b)

let test_netgen_index_isolation () =
  (* Generating net 1 first must not change net 2. *)
  let rng1 = Prng.create 7L in
  let _ = Netgen.generate rng1 ~index:1 in
  let after = Netgen.generate rng1 ~index:2 in
  let rng2 = Prng.create 7L in
  let direct = Netgen.generate rng2 ~index:2 in
  Alcotest.(check bool) "order independent" true (Net.equal after direct)

let prop_netgen_respects_recipe =
  QCheck.Test.make ~name:"generated nets follow the Section 6 recipe"
    ~count:100
    QCheck.(int_range 1 10_000)
    (fun index ->
      let rng = Prng.create 5L in
      let net = Netgen.generate rng ~index in
      let m = Net.segment_count net in
      let total = Net.total_length net in
      let segment_lengths_ok =
        Array.for_all
          (fun (s : Rip_net.Segment.t) ->
            s.Rip_net.Segment.length >= 1000.0
            && s.Rip_net.Segment.length <= 2500.0)
          net.Net.segments
      in
      let layers_ok =
        Array.for_all
          (fun (s : Rip_net.Segment.t) ->
            s.Rip_net.Segment.layer_name = "metal4"
            || s.Rip_net.Segment.layer_name = "metal5")
          net.Net.segments
      in
      let zone_ok =
        match net.Net.zones with
        | [ z ] ->
            let f = Zone.length z /. total in
            f >= 0.199 && f <= 0.401 && z.Zone.z_start >= 0.0
            && z.Zone.z_end <= total +. 1e-6
        | _ -> false
      in
      m >= 4 && m <= 10 && segment_lengths_ok && layers_ok && zone_ok)

let test_netgen_custom_config () =
  let config =
    { Netgen.default with
      Netgen.zone_count = 0; min_segments = 2; max_segments = 2;
      driver_width = 11.0; receiver_width = 13.0 }
  in
  let net = Netgen.generate ~config (Prng.create 1L) ~index:1 in
  Alcotest.(check int) "segments" 2 (Net.segment_count net);
  Alcotest.(check (list Alcotest.reject)) "no zones" [] net.Net.zones;
  Alcotest.(check (float 1e-9)) "driver" 11.0 net.Net.driver_width

(* --- Suite ------------------------------------------------------------------- *)

let test_suite_stable () =
  let a = Suite.nets () and b = Suite.nets () in
  Alcotest.(check int) "count" Suite.default_count (List.length a);
  Alcotest.(check bool) "deterministic" true (List.for_all2 Net.equal a b)

let test_suite_names () =
  match Suite.nets ~count:2 () with
  | [ a; b ] ->
      Alcotest.(check string) "first" "net01" a.Net.name;
      Alcotest.(check string) "second" "net02" b.Net.name
  | _ -> Alcotest.fail "expected two nets"

let test_timing_targets () =
  let targets = Suite.timing_targets ~tau_min:100.0 () in
  Alcotest.(check int) "20 targets" 20 (List.length targets);
  Alcotest.(check (float 1e-9)) "first" 105.0 (List.hd targets);
  Alcotest.(check (float 1e-9)) "last" 205.0 (List.nth targets 19);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "increasing" true (increasing targets)

(* --- Baseline ----------------------------------------------------------------- *)

let test_baseline_fixed_size () =
  let b = Baseline.fixed_size ~granularity:20.0 in
  Alcotest.(check int) "ten widths" 10 (Repeater_library.size b.Baseline.library);
  Alcotest.(check (float 1e-9)) "min" 10.0
    (Repeater_library.min_width b.Baseline.library);
  Alcotest.(check (float 1e-9)) "max" 190.0
    (Repeater_library.max_width b.Baseline.library)

let test_baseline_fixed_range () =
  let b = Baseline.fixed_range ~granularity:40.0 in
  Alcotest.(check (float 1e-9)) "min" 10.0
    (Repeater_library.min_width b.Baseline.library);
  Alcotest.(check bool) "max within range" true
    (Repeater_library.max_width b.Baseline.library <= 400.0)

let test_baseline_solve_runs () =
  let net = List.hd (Suite.nets ~count:1 ()) in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  let run =
    Baseline.solve (Baseline.fixed_size ~granularity:40.0) process geometry
      ~budget:(1.5 *. tau_min)
  in
  Alcotest.(check bool) "feasible" true (run.Baseline.result <> None);
  Alcotest.(check bool) "timed" true (run.Baseline.runtime_seconds >= 0.0)

(* --- Table ---------------------------------------------------------------------- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "four lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "pads ragged rows" true
    (Helpers.contains s "333")

let test_table_formats () =
  Alcotest.(check string) "percent" "22.95" (Table.percent 22.951);
  Alcotest.(check string) "seconds small" "0.0010" (Table.seconds 0.001);
  Alcotest.(check string) "seconds mid" "0.50" (Table.seconds 0.5);
  Alcotest.(check string) "seconds large" "34.5" (Table.seconds 34.45)

(* --- Experiments ------------------------------------------------------------------ *)

let fake_rip ~width : Rip.report =
  {
    Rip.solution =
      (if width > 0.0 then Solution.create [ (100.0, width) ]
       else Solution.empty);
    total_width = width;
    delay = 0.0;
    power_watts = 0.0;
    runtime_seconds = 0.0;
    trace =
      { Rip.coarse = None; used_fallback_library = false; refined = None;
        refined_library = None; refined_candidates = []; final = None;
        rescue = None };
  }

let fake_baseline ~width : Power_dp.result =
  {
    Power_dp.solution =
      (if width > 0.0 then Solution.create [ (100.0, width) ]
       else Solution.empty);
    total_width = width;
    delay = 0.0;
    stats = { Power_dp.sites = 0; transitions = 0; labels = 0 };
  }

let test_saving_percent () =
  let check msg expected baseline rip =
    Alcotest.(check (option (float 1e-9))) msg expected
      (Experiments.saving_percent ~baseline:(fake_baseline ~width:baseline)
         ~rip:(fake_rip ~width:rip))
  in
  check "normal saving" (Some 25.0) 100.0 75.0;
  check "negative saving" (Some (-50.0)) 100.0 150.0;
  check "both zero" (Some 0.0) 0.0 0.0;
  check "only baseline zero" None 0.0 10.0

let test_small_sweep_structure () =
  let nets = Suite.nets ~count:2 () in
  let runs =
    Experiments.run_suite ~granularities:[ 20.0; 40.0 ] ~nets
      ~targets_per_net:3 process
  in
  Alcotest.(check int) "two nets" 2 (List.length runs);
  List.iter
    (fun (run : Experiments.net_run) ->
      Alcotest.(check int) "three cells" 3
        (List.length run.Experiments.cells);
      List.iter
        (fun (cell : Experiments.cell) ->
          Alcotest.(check int) "two baselines" 2
            (List.length cell.Experiments.baselines);
          Alcotest.(check bool) "rip succeeded" true
            (Result.is_ok cell.Experiments.rip))
        run.Experiments.cells)
    runs;
  (* Table 1 and Figure 7 render without raising and contain the nets. *)
  let t1 = Experiments.render_table1 (Experiments.table1 runs) in
  Alcotest.(check bool) "table1 mentions net01" true
    (Helpers.contains t1 "net01");
  let fig = Experiments.fig7 ~granularity:40.0 runs in
  Alcotest.(check int) "fig7 points" 3 (List.length fig);
  let rendered = Experiments.render_fig7 ~granularity:40.0 fig in
  Alcotest.(check bool) "fig7 renders" true (Helpers.contains rendered "1.05")

let test_table2_structure () =
  let nets = Suite.nets ~count:1 () in
  let rows =
    Experiments.table2 ~granularities:[ 40.0 ] ~nets ~targets_per_net:2
      process
  in
  match rows with
  | [ row ] ->
      Alcotest.(check (float 1e-9)) "granularity" 40.0
        row.Experiments.granularity;
      Alcotest.(check bool) "timings measured" true
        (row.Experiments.t_dp > 0.0 && row.Experiments.t_rip > 0.0);
      Alcotest.(check bool) "renders" true
        (Helpers.contains
           (Experiments.render_table2 rows)
           "g_DP(u)")
  | _ -> Alcotest.fail "expected one row"

(* --- Tree_gen ---------------------------------------------------------------- *)

let test_tree_gen_deterministic () =
  let a = Rip_workload.Tree_gen.suite ~count:3 () in
  let b = Rip_workload.Tree_gen.suite ~count:3 () in
  List.iter2
    (fun (x : Rip_tree.Tree.t) (y : Rip_tree.Tree.t) ->
      Alcotest.(check int) "same nodes" (Rip_tree.Tree.node_count x)
        (Rip_tree.Tree.node_count y);
      Alcotest.(check (float 1e-9)) "same wire"
        (Rip_tree.Tree.total_wire_length x)
        (Rip_tree.Tree.total_wire_length y))
    a b

let prop_tree_gen_recipe =
  qcheck
    (QCheck.Test.make ~name:"generated trees follow the recipe" ~count:60
       QCheck.(int_range 1 5000)
       (fun index ->
         let config = Rip_workload.Tree_gen.default in
         let tree =
           Rip_workload.Tree_gen.generate
             (Rip_numerics.Prng.create 3L)
             ~index
         in
         let sinks = Rip_tree.Tree.sink_count tree in
         sinks >= config.Rip_workload.Tree_gen.min_sinks
         && sinks <= config.Rip_workload.Tree_gen.max_sinks
         && Array.for_all
              (fun (n : Rip_tree.Tree.node) ->
                n.Rip_tree.Tree.id = 0
                || (n.Rip_tree.Tree.length
                    >= config.Rip_workload.Tree_gen.min_edge_length
                   && n.Rip_tree.Tree.length
                      <= config.Rip_workload.Tree_gen.max_edge_length))
              tree.Rip_tree.Tree.nodes))

let test_tree_experiments_structure () =
  let trees = Rip_workload.Tree_gen.suite ~count:2 () in
  let rows = Rip_workload.Tree_experiments.run ~trees ~targets_per_tree:2 process in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Rip_workload.Tree_experiments.row) ->
      Alcotest.(check int) "no violations" 0
        r.Rip_workload.Tree_experiments.hybrid_violations;
      Alcotest.(check bool) "tau positive" true
        (r.Rip_workload.Tree_experiments.tau_min > 0.0))
    rows;
  Alcotest.(check bool) "renders" true
    (Helpers.contains
       (Rip_workload.Tree_experiments.render rows)
       "tree01")

let suite =
  [
    ( "workload.netgen",
      [
        Alcotest.test_case "deterministic" `Quick test_netgen_deterministic;
        Alcotest.test_case "index isolation" `Quick
          test_netgen_index_isolation;
        Alcotest.test_case "custom config" `Quick test_netgen_custom_config;
        qcheck prop_netgen_respects_recipe;
      ] );
    ( "workload.suite",
      [
        Alcotest.test_case "stable" `Quick test_suite_stable;
        Alcotest.test_case "names" `Quick test_suite_names;
        Alcotest.test_case "timing targets" `Quick test_timing_targets;
      ] );
    ( "workload.baseline",
      [
        Alcotest.test_case "fixed size" `Quick test_baseline_fixed_size;
        Alcotest.test_case "fixed range" `Quick test_baseline_fixed_range;
        Alcotest.test_case "solve runs" `Quick test_baseline_solve_runs;
      ] );
    ( "workload.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "formats" `Quick test_table_formats;
      ] );
    ( "workload.experiments",
      [
        Alcotest.test_case "saving percent" `Quick test_saving_percent;
        Alcotest.test_case "sweep structure" `Slow test_small_sweep_structure;
        Alcotest.test_case "table2 structure" `Slow test_table2_structure;
      ] );
    ( "workload.tree",
      [
        Alcotest.test_case "tree suite deterministic" `Quick
          test_tree_gen_deterministic;
        prop_tree_gen_recipe;
        Alcotest.test_case "tree experiment structure" `Slow
          test_tree_experiments_structure;
      ] );
  ]
