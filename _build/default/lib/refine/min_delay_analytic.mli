(** Analytical (continuous) minimum-delay repeater insertion.

    The paper anchors every timing target at [tau_min], "the minimum delay
    of the net".  A grid DP can only approach that minimum from above, so
    this module computes a continuous estimate: for each repeater count
    [n], size the repeaters with the bounded lambda -> infinity limit of
    Eq. (8) and descend on locations with the one-sided delay derivatives
    of Eqs. (17)-(18) (backtracking step, forbidden zones respected),
    keeping the best delay over all [n].

    Widths are kept inside the manufacturable range so the resulting
    anchor is ambitious but reachable by the discrete design space. *)

type result = {
  solution : Rip_elmore.Solution.t;  (** continuous widths *)
  delay : float;
  repeater_count : int;
}

val solve :
  ?max_repeaters:int -> ?min_width:float -> ?max_width:float ->
  ?step:float -> Rip_net.Geometry.t -> Rip_tech.Repeater_model.t -> result
(** Best insertion found; the empty insertion is always a candidate, so
    this never fails.  [max_repeaters] defaults to one per 1000 um of net
    (at least 4); widths default to the manufacturable range (10u, 400u);
    [step] is the initial move distance (100 um). *)

val tau_min :
  ?max_repeaters:int -> ?min_width:float -> ?max_width:float ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t -> float
(** [(solve ...).delay]. *)
