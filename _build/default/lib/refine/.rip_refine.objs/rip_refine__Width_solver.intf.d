lib/refine/width_solver.mli: Rip_net Rip_tech
