lib/refine/min_delay_analytic.ml: Array Float List Movement Rip_elmore Rip_net Stdlib Width_solver
