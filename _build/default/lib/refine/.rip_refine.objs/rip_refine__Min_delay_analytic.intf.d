lib/refine/min_delay_analytic.mli: Rip_elmore Rip_net Rip_tech
