lib/refine/refine.ml: Array Float List Movement Rip_elmore Rip_net Width_solver
