lib/refine/movement.mli: Rip_net Rip_tech
