lib/refine/movement.ml: Array Rip_net Rip_tech
