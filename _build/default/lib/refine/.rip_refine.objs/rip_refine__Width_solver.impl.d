lib/refine/width_solver.ml: Array Float Rip_net Rip_numerics Rip_tech
