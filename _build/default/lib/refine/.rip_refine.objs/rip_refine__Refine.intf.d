lib/refine/refine.mli: Rip_elmore Rip_net Rip_tech Width_solver
