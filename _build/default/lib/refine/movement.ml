module Geometry = Rip_net.Geometry
module Net = Rip_net.Net

type derivative = {
  minus : float;
  plus : float;
}

type direction = Stay | Downstream | Upstream

let location_derivatives geometry repeater ~positions ~widths =
  let n = Array.length positions in
  if Array.length widths <> n then
    invalid_arg "Movement: positions/widths length mismatch";
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let rs = repeater.Rip_tech.Repeater_model.rs in
  let co = repeater.Rip_tech.Repeater_model.co in
  let point i =
    if i < 0 then 0.0 else if i >= n then length else positions.(i)
  in
  let width i =
    if i < 0 then net.Net.driver_width
    else if i >= n then net.Net.receiver_width
    else widths.(i)
  in
  Array.init n (fun i ->
      if i > 0 && positions.(i) <= positions.(i - 1) then
        invalid_arg "Movement: positions must be strictly increasing";
      let upstream_r =
        Geometry.resistance_between geometry (point (i - 1)) (point i)
      in
      let downstream_c =
        Geometry.capacitance_between geometry (point i) (point (i + 1))
      in
      let wi = width i in
      let w_prev = width (i - 1) in
      let w_next = width (i + 1) in
      let one_side (r_unit, c_unit) =
        (co *. r_unit *. (wi -. w_next))
        +. (rs *. c_unit *. ((1.0 /. w_prev) -. (1.0 /. wi)))
        +. (c_unit *. upstream_r)
        -. (r_unit *. downstream_c)
      in
      {
        minus = one_side (Geometry.unit_rc_at geometry Geometry.Left positions.(i));
        plus = one_side (Geometry.unit_rc_at geometry Geometry.Right positions.(i));
      })

let preferred_direction ~lambda d =
  (* With lambda > 0, condition (22) requires plus >= 0 and (23) requires
     minus <= 0; the sign of lambda is kept general for robustness. *)
  let gain_down = -.(lambda *. d.plus) in
  let gain_up = lambda *. d.minus in
  if gain_down <= 0.0 && gain_up <= 0.0 then Stay
  else if gain_down >= gain_up then Downstream
  else Upstream
