module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution

type result = {
  solution : Solution.t;
  delay : float;
  repeater_count : int;
}

let min_gap = 1.0

(* Evenly spread n positions, pushed out of forbidden zones (to the nearer
   edge) and re-ordered with a minimum gap.  None when they cannot fit. *)
let initial_positions net length n =
  let zones = net.Net.zones in
  let snap x =
    match List.find_opt (fun z -> Zone.contains z x) zones with
    | None -> x
    | Some z ->
        if x -. z.Zone.z_start <= z.Zone.z_end -. x then z.Zone.z_start
        else z.Zone.z_end
  in
  let raw =
    Array.init n (fun i ->
        snap (length *. float_of_int (i + 1) /. float_of_int (n + 1)))
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    if i > 0 && raw.(i) <= raw.(i - 1) +. min_gap then
      raw.(i) <- raw.(i - 1) +. min_gap;
    if Zone.blocked zones raw.(i) then
      raw.(i) <- Zone.first_allowed_at_or_after zones raw.(i);
    if raw.(i) >= length -. min_gap then ok := false
  done;
  if !ok then Some raw else None

let delay_at geometry repeater ~min_width ~max_width positions =
  let widths =
    Width_solver.min_delay_sizing_bounded geometry repeater ~positions
      ~min_width ~max_width
  in
  (widths, Width_solver.tau_total geometry repeater ~positions ~widths)

(* Descend on locations for a fixed count: derivative-guided rounds with
   revert-and-halve backtracking on the true delay. *)
let optimise_positions geometry repeater net length ~min_width ~max_width
    ~step positions =
  let current = ref (delay_at geometry repeater ~min_width ~max_width positions)
  in
  let step = ref step in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 200 do
    incr rounds;
    let widths, _ = !current in
    let derivatives =
      Movement.location_derivatives geometry repeater ~positions ~widths
    in
    let saved = Array.copy positions in
    let moved = ref 0 in
    Array.iteri
      (fun i d ->
        let target =
          match Movement.preferred_direction ~lambda:1.0 d with
          | Movement.Stay -> positions.(i)
          | Movement.Downstream -> positions.(i) +. !step
          | Movement.Upstream -> positions.(i) -. !step
        in
        if target <> positions.(i) then begin
          let lo =
            if i = 0 then min_gap else positions.(i - 1) +. min_gap
          in
          let hi =
            if i = Array.length positions - 1 then length -. min_gap
            else positions.(i + 1) -. min_gap
          in
          let clamped = Float.max lo (Float.min hi target) in
          if clamped <> positions.(i) && Net.position_legal net clamped
          then begin
            positions.(i) <- clamped;
            incr moved
          end
        end)
      derivatives;
    if !moved = 0 then continue_ := false
    else begin
      let next = delay_at geometry repeater ~min_width ~max_width positions in
      if snd next < snd !current then current := next
      else begin
        Array.blit saved 0 positions 0 (Array.length saved);
        step := !step /. 2.0;
        if !step < 2.0 then continue_ := false
      end
    end
  done;
  !current

let solve ?max_repeaters ?(min_width = 10.0) ?(max_width = 400.0)
    ?(step = 100.0) geometry repeater =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let max_repeaters =
    match max_repeaters with
    | Some n -> n
    | None -> Stdlib.max 4 (int_of_float (length /. 1000.0))
  in
  let bare_delay =
    Width_solver.tau_total geometry repeater ~positions:[||] ~widths:[||]
  in
  let best =
    ref { solution = Solution.empty; delay = bare_delay; repeater_count = 0 }
  in
  let misses = ref 0 in
  let n = ref 1 in
  while !n <= max_repeaters && !misses < 3 do
    (match initial_positions net length !n with
    | None -> incr misses
    | Some positions ->
        let widths, delay =
          optimise_positions geometry repeater net length ~min_width
            ~max_width ~step positions
        in
        if delay < !best.delay then begin
          best :=
            {
              solution =
                Solution.create
                  (List.combine (Array.to_list positions)
                     (Array.to_list widths));
              delay;
              repeater_count = !n;
            };
          misses := 0
        end
        else incr misses);
    incr n
  done;
  !best

let tau_min ?max_repeaters ?min_width ?max_width geometry repeater =
  (solve ?max_repeaters ?min_width ?max_width geometry repeater).delay
