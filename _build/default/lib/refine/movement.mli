(** One-sided derivatives of the total delay with respect to repeater
    locations — Eqs. (17) and (18) of the paper.

    When repeater [i] slides downstream, wire load moves from its output to
    its input; the right-hand derivative uses the unit-length RC of the
    wire just after [x_i], the left-hand one the RC just before.  Inside a
    segment the two coincide (Eq. (24)); they differ only at segment
    boundaries of a multi-layer net. *)

type derivative = {
  minus : float;  (** left-hand [(d tau / d x_i)_-], Eq. (18) *)
  plus : float;  (** right-hand [(d tau / d x_i)_+], Eq. (17) *)
}

val location_derivatives :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  positions:float array -> widths:float array -> derivative array
(** One entry per repeater.
    @raise Invalid_argument on length mismatch or unordered positions. *)

type direction = Stay | Downstream | Upstream

val preferred_direction : lambda:float -> derivative -> direction
(** The move that first-order-reduces the total repeater width (Eq. (13)):
    [Downstream] when [lambda * plus < 0] — moving right lowers delay and
    frees width — and [Upstream] when [lambda * minus > 0]; when both
    optimality conditions (22)–(23) are violated, the direction with the
    larger first-order gain wins; [Stay] when both hold. *)
