(** Legality and timing checks for insertion solutions (Problem LPRI). *)

type violation =
  | Outside_net of float  (** repeater position beyond [0, L] *)
  | In_forbidden_zone of float
  | Width_out_of_range of float  (** outside the configured [min, max] *)
  | Over_budget of { delay : float; budget : float }

val pp_violation : violation Fmt.t

val check :
  ?min_width:float -> ?max_width:float -> Rip_tech.Process.t ->
  Rip_net.Net.t -> budget:float -> Rip_elmore.Solution.t -> violation list
(** Every LPRI violation of the solution; empty means valid.  Width bounds
    default to accepting any positive width (REFINE's continuous solutions
    are checkable too). *)

val is_valid :
  ?min_width:float -> ?max_width:float -> Rip_tech.Process.t ->
  Rip_net.Net.t -> budget:float -> Rip_elmore.Solution.t -> bool
