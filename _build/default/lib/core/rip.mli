(** Algorithm RIP (Figure 6 of the paper): the hybrid repeater insertion
    scheme.

    {ol
    {- run the power DP with a coarse library and coarse uniform candidate
       locations;}
    {- improve the seed with the analytical solver REFINE;}
    {- synthesise a concise refined library (REFINE widths snapped to the
       discrete grid) and a small refined candidate set (REFINE locations
       plus/minus a few fine-pitch slots);}
    {- rerun the power DP on the refined space.}}

    When the coarse DP finds no solution (the coarse library may simply
    lack the right sizes for very tight budgets), line 1 is retried with
    the configured fallback library before giving up; when the final DP is
    infeasible despite the refined space (rare rounding corner), the best
    earlier feasible solution is returned.  Every returned solution is
    legal and meets the budget. *)

type phase_trace = {
  coarse : Rip_dp.Power_dp.result option;
      (** line 1 result ([None] only if even the fallback failed) *)
  used_fallback_library : bool;
  refined : Rip_refine.Refine.outcome option;  (** line 2 result *)
  refined_library : Rip_dp.Repeater_library.t option;  (** line 3 library B *)
  refined_candidates : float list;  (** line 3 location set S *)
  final : Rip_dp.Power_dp.result option;  (** line 4 result *)
  rescue : Rip_dp.Power_dp.result option;
      (** last-resort pass for budgets so tight that every DP grid missed:
          a DP over fine-pitch candidates around the analytical min-delay
          locations ({!Rip_refine.Min_delay_analytic}) with the full
          reference library.  [None] unless it was needed. *)
}

type report = {
  solution : Rip_elmore.Solution.t;
  total_width : float;  (** power proxy p = sum w_i, u *)
  delay : float;  (** seconds, <= budget *)
  power_watts : float;  (** via the process power model, Eq. (3) *)
  runtime_seconds : float;  (** wall clock of the whole pipeline *)
  trace : phase_trace;
}

val solve :
  ?config:Config.t -> Rip_tech.Process.t -> Rip_net.Net.t -> budget:float ->
  (report, string) result
(** Solve Problem LPRI for the net under the given delay budget. *)

val solve_geometry :
  ?config:Config.t -> Rip_tech.Process.t -> Rip_net.Geometry.t ->
  budget:float -> (report, string) result
(** As {!solve} with a pre-built geometry (the experiment harness reuses
    one geometry across the 20 timing targets of a net). *)

val tau_min : Rip_tech.Process.t -> Rip_net.Geometry.t -> float
(** The timing-target anchor, "the minimum delay of the net": the better
    of the analytical continuous minimum
    ({!Rip_refine.Min_delay_analytic}) and a fine-grid DP minimum
    ({!Config.tau_min_library} at {!Config.tau_min_pitch}). *)
