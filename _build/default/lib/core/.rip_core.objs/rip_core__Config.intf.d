lib/core/config.mli: Fmt Rip_dp Rip_refine
