lib/core/rip.ml: Config Float List Printf Rip_dp Rip_elmore Rip_net Rip_refine Rip_tech Stdlib Unix
