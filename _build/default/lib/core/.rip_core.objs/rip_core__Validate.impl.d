lib/core/validate.ml: Float Fmt List Rip_elmore Rip_net Rip_tech
