lib/core/validate.mli: Fmt Rip_elmore Rip_net Rip_tech
