lib/core/config.ml: Fmt Rip_dp Rip_refine
