lib/core/rip.mli: Config Rip_dp Rip_elmore Rip_net Rip_refine Rip_tech
