(** D2M two-moment delay metric (Alpert/Devgan/Kashyap).

    The paper notes (Section 4.1) that "more accurate analytical delay
    models can be used by replacing the Elmore delay with the
    corresponding delay functions".  This module provides the standard
    next step up: the D2M metric [ln 2 * m1^2 / sqrt m2] over the first
    two transfer moments, evaluated on a discretised stage.  Elmore
    (= [m1]) is a provable upper bound of the 50 % delay; D2M tracks the
    true delay much more closely on resistively shielded lines.

    The optimisers deliberately stay on Elmore (as the paper's do); this
    evaluator is for *analysis* — checking that designs optimised under
    Elmore still order correctly under a more accurate metric. *)

val stage_delay :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t ->
  driver_pos:float -> driver_width:float ->
  load_pos:float -> load_width:float -> ?lumps_per_um:float -> unit -> float
(** D2M delay of one stage, including the driver's intrinsic [Rs*Cp]
    delay (kept as an additive term, as in Eq. (1)).  Default
    discretisation: 0.5 lumps/um. *)

val total :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t -> float
(** Sum of D2M stage delays along the repeated net (Eq. (2) with the
    replaced stage metric). *)

val elmore_ratio :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t -> float
(** [total / Delay.total]: how much of the Elmore pessimism the design
    carries; in [ln 2, 1] for RC stages. *)
