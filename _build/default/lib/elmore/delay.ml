module Geometry = Rip_net.Geometry
module Net = Rip_net.Net

(* Fold over stages: (0, w_d) -> repeaters -> (L, w_r). *)
let stage_delays repeater geometry solution =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let endpoints =
    ((0.0, net.Net.driver_width)
     :: List.map
          (fun (r : Solution.repeater) -> (r.position, r.width))
          (Solution.repeaters solution))
    @ [ (length, net.Net.receiver_width) ]
  in
  let rec stages = function
    | (a, wa) :: ((b, wb) :: _ as rest) ->
        Stage.delay repeater geometry ~driver_pos:a ~driver_width:wa
          ~load_pos:b ~load_width:wb
        :: stages rest
    | [ _ ] | [] -> []
  in
  stages endpoints

let total repeater geometry solution =
  List.fold_left ( +. ) 0.0 (stage_delays repeater geometry solution)

let slack repeater geometry solution ~budget =
  budget -. total repeater geometry solution

let meets_budget repeater geometry solution ~budget =
  slack repeater geometry solution ~budget >= -1e-6 *. Float.abs budget
