lib/elmore/solution.ml: Float Fmt List Rip_net
