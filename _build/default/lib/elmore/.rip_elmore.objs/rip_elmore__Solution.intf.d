lib/elmore/solution.mli: Fmt Rip_net
