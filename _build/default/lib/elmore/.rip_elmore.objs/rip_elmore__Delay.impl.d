lib/elmore/delay.ml: Float List Rip_net Solution Stage
