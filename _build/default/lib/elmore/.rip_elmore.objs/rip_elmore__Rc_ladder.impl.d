lib/elmore/rc_ladder.ml: Array Float List Rip_net Rip_tech Stdlib
