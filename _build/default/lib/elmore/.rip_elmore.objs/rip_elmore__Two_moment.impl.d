lib/elmore/two_moment.ml: Delay Float List Rc_ladder Rip_net Rip_tech Solution
