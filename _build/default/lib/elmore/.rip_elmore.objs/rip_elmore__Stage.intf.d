lib/elmore/stage.mli: Rip_net Rip_tech
