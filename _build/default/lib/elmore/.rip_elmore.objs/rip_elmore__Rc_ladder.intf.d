lib/elmore/rc_ladder.mli: Rip_net Rip_tech
