lib/elmore/two_moment.mli: Rip_net Rip_tech Solution
