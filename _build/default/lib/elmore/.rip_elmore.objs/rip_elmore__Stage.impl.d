lib/elmore/stage.ml: Rip_net Rip_tech
