lib/elmore/delay.mli: Rip_net Rip_tech Solution
