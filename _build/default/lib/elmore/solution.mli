(** A repeater insertion solution: the repeaters inserted along a net,
    ordered by position.  The driver and receiver are part of the net, not
    of the solution. *)

type repeater = {
  position : float;  (** um from the driver *)
  width : float;  (** u, strictly positive *)
}

type t = private repeater list
(** Sorted by strictly increasing position. *)

val empty : t
(** The unrepeated net. *)

val create : (float * float) list -> t
(** [create placements] from [(position, width)] pairs, in any order.
    @raise Invalid_argument on a non-positive width, a negative position,
    or two repeaters at the same position. *)

val of_repeaters : repeater list -> t
(** As {!create}. *)

val repeaters : t -> repeater list
val count : t -> int

val total_width : t -> float
(** The power proxy [p = sum w_i] of Eq. (4). *)

val positions : t -> float list
val widths : t -> float list

val legal : Rip_net.Net.t -> t -> bool
(** All repeaters inside [0, L] and outside every forbidden zone. *)

val equal : t -> t -> bool
val pp : t Fmt.t
