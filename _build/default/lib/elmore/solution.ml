type repeater = {
  position : float;
  width : float;
}

type t = repeater list

let empty = []

let of_repeaters placements =
  List.iter
    (fun r ->
      if r.width <= 0.0 then
        invalid_arg "Solution.create: repeater width must be positive";
      if r.position < 0.0 then
        invalid_arg "Solution.create: repeater position must be non-negative")
    placements;
  let sorted =
    List.sort (fun a b -> Float.compare a.position b.position) placements
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.position = b.position then
          invalid_arg "Solution.create: duplicate repeater position";
        check rest
    | [] | [ _ ] -> ()
  in
  check sorted;
  sorted

let create placements =
  of_repeaters
    (List.map (fun (position, width) -> { position; width }) placements)

let repeaters t = t
let count = List.length
let total_width t = List.fold_left (fun acc r -> acc +. r.width) 0.0 t
let positions t = List.map (fun r -> r.position) t
let widths t = List.map (fun r -> r.width) t

let legal net t =
  List.for_all (fun r -> Rip_net.Net.position_legal net r.position) t

let equal a b =
  List.equal
    (fun x y -> x.position = y.position && x.width = y.width)
    a b

let pp ppf t =
  let pp_rep ppf r = Fmt.pf ppf "%gu@%gum" r.width r.position in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp_rep) t
