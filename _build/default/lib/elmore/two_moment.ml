module Repeater_model = Rip_tech.Repeater_model
module Geometry = Rip_net.Geometry
module Net = Rip_net.Net

let ln2 = Float.log 2.0

let stage_delay repeater geometry ~driver_pos ~driver_width ~load_pos
    ~load_width ?(lumps_per_um = 0.5) () =
  if driver_pos > load_pos then
    invalid_arg "Two_moment.stage_delay: driver downstream of load";
  let sections =
    if load_pos > driver_pos then
      Rc_ladder.wire_sections geometry ~driver_pos ~load_pos ~lumps_per_um
    else []
  in
  let m1, m2 =
    Rc_ladder.ladder_moments
      ~driver_resistance:(Repeater_model.output_resistance repeater driver_width)
      ~sections
      ~load_capacitance:(Repeater_model.input_capacitance repeater load_width)
  in
  let d2m = if m2 <= 0.0 then m1 else ln2 *. m1 *. m1 /. sqrt m2 in
  (* D2M can only tighten Elmore, never exceed it. *)
  Repeater_model.intrinsic_delay repeater +. Float.min m1 d2m

let total repeater geometry solution =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let endpoints =
    ((0.0, net.Net.driver_width)
     :: List.map
          (fun (r : Solution.repeater) -> (r.position, r.width))
          (Solution.repeaters solution))
    @ [ (length, net.Net.receiver_width) ]
  in
  let rec stages acc = function
    | (a, wa) :: ((b, wb) :: _ as rest) ->
        stages
          (acc
          +. stage_delay repeater geometry ~driver_pos:a ~driver_width:wa
               ~load_pos:b ~load_width:wb ())
          rest
    | [ _ ] | [] -> acc
  in
  stages 0.0 endpoints

let elmore_ratio repeater geometry solution =
  total repeater geometry solution
  /. Delay.total repeater geometry solution
