(** Total Elmore delay of an insertion solution (Eq. (2)): the sum of stage
    delays from the driver through each repeater to the receiver. *)

val stage_delays :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t -> float list
(** The [n + 1] per-stage delays in source-to-sink order. *)

val total :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t -> float
(** [tau_total], seconds. *)

val slack :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t ->
  budget:float -> float
(** [budget - total]; non-negative iff the solution meets timing. *)

val meets_budget :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t -> Solution.t ->
  budget:float -> bool
(** [slack >= -. tolerance] with a 1 ppm relative tolerance, so that a
    solution produced *at* the budget by a solver is accepted. *)
