module Repeater_model = Rip_tech.Repeater_model
module Geometry = Rip_net.Geometry

let lumped_load repeater geometry ~driver_pos ~load_pos ~load_width =
  Geometry.capacitance_between geometry driver_pos load_pos
  +. Repeater_model.input_capacitance repeater load_width

let delay repeater geometry ~driver_pos ~driver_width ~load_pos ~load_width =
  if driver_pos > load_pos then
    invalid_arg "Stage.delay: driver downstream of load";
  let r_drv = Repeater_model.output_resistance repeater driver_width in
  let c_load =
    lumped_load repeater geometry ~driver_pos ~load_pos ~load_width
  in
  let r_wire = Geometry.resistance_between geometry driver_pos load_pos in
  let c_gate = Repeater_model.input_capacitance repeater load_width in
  Repeater_model.intrinsic_delay repeater
  +. (r_drv *. c_load)
  +. (r_wire *. c_gate)
  +. Geometry.wire_elmore_between geometry driver_pos load_pos
