module Repeater_model = Rip_tech.Repeater_model
module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Segment = Rip_net.Segment

type section = {
  series_resistance : float;
  shunt_capacitance : float;
}

(* Elmore delay of a pi-section ladder: each section contributes half its
   capacitance before and half after its series resistance; every capacitor
   sees the total resistance upstream of it. *)
let ladder_delay ~driver_resistance ~sections ~load_capacitance =
  let upstream = ref driver_resistance in
  let delay = ref 0.0 in
  List.iter
    (fun s ->
      delay := !delay +. (!upstream *. (0.5 *. s.shunt_capacitance));
      upstream := !upstream +. s.series_resistance;
      delay := !delay +. (!upstream *. (0.5 *. s.shunt_capacitance)))
    sections;
  !delay +. (!upstream *. load_capacitance)

(* Node view of the pi-ladder: node k sits after the k-th series resistor
   and carries the adjacent half-capacitances; node 0 is the driver output
   (before any series resistance) with the first half-capacitance. *)
let ladder_nodes ~driver_resistance ~sections ~load_capacitance =
  let sections = Array.of_list sections in
  let n = Array.length sections in
  let cap = Array.make (n + 1) 0.0 in
  let upstream = Array.make (n + 1) driver_resistance in
  for k = 0 to n - 1 do
    let s = sections.(k) in
    cap.(k) <- cap.(k) +. (0.5 *. s.shunt_capacitance);
    cap.(k + 1) <- cap.(k + 1) +. (0.5 *. s.shunt_capacitance);
    upstream.(k + 1) <- upstream.(k) +. s.series_resistance
  done;
  cap.(n) <- cap.(n) +. load_capacitance;
  (cap, upstream)

let ladder_moments ~driver_resistance ~sections ~load_capacitance =
  let cap, upstream =
    ladder_nodes ~driver_resistance ~sections ~load_capacitance
  in
  let n = Array.length cap - 1 in
  (* m1 at every node, O(n): raising k adds (R_up(k) - R_up(k-1)) times
     the capacitance at-or-beyond node k. *)
  let tail_cap = Array.make (n + 2) 0.0 in
  for k = n downto 0 do
    tail_cap.(k) <- tail_cap.(k + 1) +. cap.(k)
  done;
  let m1 = Array.make (n + 1) 0.0 in
  m1.(0) <- upstream.(0) *. tail_cap.(0);
  for k = 1 to n do
    m1.(k) <- m1.(k - 1) +. ((upstream.(k) -. upstream.(k - 1)) *. tail_cap.(k))
  done;
  (* m2 at the last node: on a single path the shared resistance with the
     load is each node's own upstream resistance. *)
  let m2 = ref 0.0 in
  for k = 0 to n do
    m2 := !m2 +. (upstream.(k) *. cap.(k) *. m1.(k))
  done;
  (m1.(n), !m2)

(* Chop [driver_pos, load_pos] into uniform lumps, but never across a
   segment boundary, so each lump has constant per-um RC. *)
let wire_sections geometry ~driver_pos ~load_pos ~lumps_per_um =
  let net = Geometry.net geometry in
  let segments = net.Net.segments in
  let cuts =
    List.filter
      (fun b -> b > driver_pos && b < load_pos)
      (Geometry.boundaries geometry)
  in
  let points = (driver_pos :: cuts) @ [ load_pos ] in
  let rec pieces = function
    | a :: (b :: _ as rest) -> (a, b) :: pieces rest
    | [ _ ] | [] -> []
  in
  List.concat_map
    (fun (a, b) ->
      let i = Geometry.segment_index_at geometry Geometry.Right a in
      let s = segments.(i) in
      let span = b -. a in
      let n = Stdlib.max 1 (int_of_float (Float.ceil (span *. lumps_per_um))) in
      let lump = span /. float_of_int n in
      List.init n (fun _ ->
          {
            series_resistance = lump *. s.Segment.resistance_per_um;
            shunt_capacitance = lump *. s.Segment.capacitance_per_um;
          }))
    (pieces points)

let stage_delay_discretised repeater geometry ~driver_pos ~driver_width
    ~load_pos ~load_width ~lumps_per_um =
  let sections =
    if load_pos > driver_pos then
      wire_sections geometry ~driver_pos ~load_pos ~lumps_per_um
    else []
  in
  Repeater_model.intrinsic_delay repeater
  +. ladder_delay
       ~driver_resistance:(Repeater_model.output_resistance repeater driver_width)
       ~sections
       ~load_capacitance:(Repeater_model.input_capacitance repeater load_width)
