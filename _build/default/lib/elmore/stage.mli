(** Elmore delay of one repeater stage (Eq. (1) of the paper).

    A stage is a driving gate of width [w_a] at position [a], the wire up to
    position [b], and a receiving gate of width [w_b] at [b] modelled as the
    capacitor [Co * w_b].  The driving gate contributes its intrinsic
    [Rs * Cp] self-loading delay and its output resistance [Rs / w_a]. *)

val delay :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t ->
  driver_pos:float -> driver_width:float ->
  load_pos:float -> load_width:float -> float
(** Stage Elmore delay in seconds.
    @raise Invalid_argument when [driver_pos > load_pos] or a width is not
    strictly positive. *)

val lumped_load :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t ->
  driver_pos:float -> load_pos:float -> load_width:float -> float
(** Total capacitance seen by the driver: wire capacitance of the span plus
    the receiving gate's input capacitance. *)
