(** Independent RC-ladder Elmore evaluator.

    Used by the test suite to cross-check the closed-form stage delay of
    {!Stage}: a stage's distributed wire is discretised into many small
    pi-sections and the Elmore delay of the resulting lumped ladder is
    computed from first principles (sum over capacitors of the upstream
    resistance).  The discretisation error is O(1/n^2). *)

type section = {
  series_resistance : float;  (** Ohm *)
  shunt_capacitance : float;  (** F, as a pi-section: half at each end *)
}

val ladder_delay :
  driver_resistance:float -> sections:section list -> load_capacitance:float ->
  float
(** Elmore delay from the driver through the ladder to the load. *)

val ladder_moments :
  driver_resistance:float -> sections:section list -> load_capacitance:float ->
  float * float
(** First and second transfer-function moments [(m1, m2)] at the load:
    [m1] is the Elmore delay; [m2 = sum_k R_up(k) C_k m1(k)] over the
    ladder nodes.  Used by {!Two_moment} for the D2M delay metric. *)

val wire_sections :
  Rip_net.Geometry.t -> driver_pos:float -> load_pos:float ->
  lumps_per_um:float -> section list
(** Discretise a wire span into pi-sections, never crossing a segment
    boundary (each lump has constant per-um RC). *)

val stage_delay_discretised :
  Rip_tech.Repeater_model.t -> Rip_net.Geometry.t ->
  driver_pos:float -> driver_width:float ->
  load_pos:float -> load_width:float -> lumps_per_um:float -> float
(** The same quantity as {!Stage.delay} computed by discretisation
    (including the driver's intrinsic [Rs*Cp] term), for validation. *)
