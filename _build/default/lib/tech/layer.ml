type t = {
  name : string;
  resistance_per_um : float;
  capacitance_per_um : float;
}

let create ~name ~resistance_per_um ~capacitance_per_um =
  if resistance_per_um <= 0.0 || capacitance_per_um <= 0.0 then
    invalid_arg "Layer.create: RC values must be positive";
  { name; resistance_per_um; capacitance_per_um }

let femto = 1e-15

let metal4 =
  create ~name:"metal4" ~resistance_per_um:0.06
    ~capacitance_per_um:(0.48 *. femto)

let metal5 =
  create ~name:"metal5" ~resistance_per_um:0.05
    ~capacitance_per_um:(0.52 *. femto)

let equal a b =
  String.equal a.name b.name
  && a.resistance_per_um = b.resistance_per_um
  && a.capacitance_per_um = b.capacitance_per_um

let pp ppf l =
  Fmt.pf ppf "%s{r=%g Ohm/um; c=%g F/um}" l.name l.resistance_per_um
    l.capacitance_per_um
