type t = {
  vdd : float;
  frequency : float;
  activity : float;
  leakage_per_unit_width : float;
}

let create ~vdd ~frequency ~activity ~leakage_per_unit_width =
  if vdd <= 0.0 || frequency <= 0.0 then
    invalid_arg "Power_model.create: vdd and frequency must be positive";
  if activity <= 0.0 || activity > 1.0 then
    invalid_arg "Power_model.create: activity must be in (0,1]";
  if leakage_per_unit_width < 0.0 then
    invalid_arg "Power_model.create: leakage must be non-negative";
  { vdd; frequency; activity; leakage_per_unit_width }

let default_180nm =
  create ~vdd:1.8 ~frequency:500e6 ~activity:0.15
    ~leakage_per_unit_width:5e-9

let dynamic_power m ~capacitance =
  m.activity *. m.vdd *. m.vdd *. m.frequency *. capacitance

let width_equivalent_constant m ~repeater =
  let cap_per_width =
    Repeater_model.input_capacitance repeater 1.0
    +. Repeater_model.output_capacitance repeater 1.0
  in
  dynamic_power m ~capacitance:cap_per_width +. m.leakage_per_unit_width

let repeater_power m ~repeater ~total_width =
  if total_width < 0.0 then
    invalid_arg "Power_model.repeater_power: negative width";
  width_equivalent_constant m ~repeater *. total_width

let pp ppf m =
  Fmt.pf ppf "power{vdd=%gV; f=%gHz; alpha=%g; beta=%gW/u}" m.vdd m.frequency
    m.activity m.leakage_per_unit_width
