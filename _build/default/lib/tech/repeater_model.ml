type t = {
  rs : float;
  co : float;
  cp : float;
}

let create ~rs ~co ~cp =
  if rs <= 0.0 || co <= 0.0 || cp <= 0.0 then
    invalid_arg "Repeater_model.create: parameters must be positive";
  { rs; co; cp }

let positive_width w =
  if w <= 0.0 then invalid_arg "Repeater_model: width must be positive"

let output_resistance m w =
  positive_width w;
  m.rs /. w

let input_capacitance m w =
  positive_width w;
  m.co *. w

let output_capacitance m w =
  positive_width w;
  m.cp *. w

let intrinsic_delay m = m.rs *. m.cp

let pp ppf m =
  Fmt.pf ppf "repeater{Rs=%g Ohm; Co=%g F; Cp=%g F}" m.rs m.co m.cp
