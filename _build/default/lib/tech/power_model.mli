(** Repeater power model (Eqs. (3)–(4) of the paper).

    Total repeater power is approximated by dynamic switching power of the
    total gate capacitance plus a leakage term linear in repeater width:
    [P = alpha * vdd^2 * f * C_load + beta * sum w_i].  Since the gate
    capacitance is itself linear in width, minimising power is equivalent to
    minimising the total repeater width [p = sum w_i]; the optimiser works
    on widths and this module converts the result back to watts for
    reporting. *)

type t = {
  vdd : float;  (** supply voltage, V *)
  frequency : float;  (** clock frequency, Hz *)
  activity : float;  (** switching activity factor alpha *)
  leakage_per_unit_width : float;  (** beta: leakage power per u, W *)
}

val create :
  vdd:float -> frequency:float -> activity:float ->
  leakage_per_unit_width:float -> t
(** @raise Invalid_argument on non-positive vdd/frequency, activity outside
    (0,1], or negative leakage. *)

val default_180nm : t
(** 1.8 V, 500 MHz, alpha = 0.15, 5 nW leakage per unit width. *)

val dynamic_power : t -> capacitance:float -> float
(** [dynamic_power m ~capacitance] is [alpha * vdd^2 * f * capacitance]. *)

val repeater_power :
  t -> repeater:Repeater_model.t -> total_width:float -> float
(** Watts dissipated by repeaters of combined width [total_width] (input
    plus parasitic gate capacitance switch every active cycle, plus
    leakage). *)

val width_equivalent_constant : t -> repeater:Repeater_model.t -> float
(** The [gamma] of Eq. (4): watts per unit of total repeater width, i.e.
    [repeater_power] is exactly [gamma *. total_width]. *)

val pp : t Fmt.t
