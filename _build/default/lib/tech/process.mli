(** A complete process bundle: device model, global metal layers and power
    model.  The default is the 0.18 um setup of the paper's Section 6, with
    device constants documented in DESIGN.md (the paper does not publish its
    exact numbers; these literature values place the power-optimal repeater
    near 82u, matching the paper's 80u coarse grid). *)

type t = {
  name : string;
  repeater : Repeater_model.t;
  layers : Layer.t list;  (** layers available to the router *)
  power : Power_model.t;
}

val create :
  name:string -> repeater:Repeater_model.t -> layers:Layer.t list ->
  power:Power_model.t -> t
(** @raise Invalid_argument when [layers] is empty. *)

val default_180nm : t
(** Rs = 14.1 kOhm, Co = 1.8 fF, Cp = 1.5 fF; metal4 + metal5.  These put
    the classic power-oblivious optimal repeater near 250u (metal4) /
    285u (metal5) with optimal spacing near 1.8 mm — consistent with the
    paper's (10u, 400u) library range, its 80u-grained coarse grid, and
    its observation that a library capped at 100u cannot meet tight
    targets (Figure 7(a) zone I). *)

val layer_by_name : t -> string -> Layer.t option
(** Look a routing layer up by name. *)

val optimal_uniform_width : t -> Layer.t -> float
(** The classic closed-form power-oblivious optimum
    [sqrt (Rs * c / (r * Co))] for a uniform line on the given layer; used
    for sanity checks and default library ranges. *)

val optimal_uniform_spacing : t -> Layer.t -> float
(** The classic closed form [sqrt (2 * Rs * (Cp + Co) / (r * c))] in um. *)

val pp : t Fmt.t
