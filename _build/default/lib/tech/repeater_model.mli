(** Switch-level RC model of a repeater (Figure 2 of the paper).

    Widths are expressed as multiples of the minimal repeater width [u]
    (so [w = 80.0] is the paper's "80u" repeater).  A repeater of width [w]
    has output resistance [rs /. w], input capacitance [co *. w] and output
    (drain/parasitic) capacitance [cp *. w]. *)

type t = {
  rs : float;  (** output resistance of the unit repeater, Ohm *)
  co : float;  (** input capacitance of the unit repeater, F *)
  cp : float;  (** output capacitance of the unit repeater, F *)
}

val create : rs:float -> co:float -> cp:float -> t
(** @raise Invalid_argument when any parameter is not strictly positive. *)

val output_resistance : t -> float -> float
(** [output_resistance m w] is [m.rs /. w].
    @raise Invalid_argument when [w <= 0.]. *)

val input_capacitance : t -> float -> float
(** [input_capacitance m w] is [m.co *. w]. *)

val output_capacitance : t -> float -> float
(** [output_capacitance m w] is [m.cp *. w]. *)

val intrinsic_delay : t -> float
(** The width-independent [Rs * Cp] self-loading term of Eq. (1). *)

val pp : t Fmt.t
