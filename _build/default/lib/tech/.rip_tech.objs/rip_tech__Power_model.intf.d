lib/tech/power_model.mli: Fmt Repeater_model
