lib/tech/layer.mli: Fmt
