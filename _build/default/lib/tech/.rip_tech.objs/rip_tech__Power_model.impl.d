lib/tech/power_model.ml: Fmt Repeater_model
