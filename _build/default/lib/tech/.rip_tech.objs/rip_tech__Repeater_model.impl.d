lib/tech/repeater_model.ml: Fmt
