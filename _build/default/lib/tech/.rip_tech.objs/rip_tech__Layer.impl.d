lib/tech/layer.ml: Fmt String
