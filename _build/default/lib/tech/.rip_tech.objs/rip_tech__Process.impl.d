lib/tech/process.ml: Fmt Layer List Power_model Repeater_model String
