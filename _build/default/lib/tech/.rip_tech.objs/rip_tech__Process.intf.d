lib/tech/process.mli: Fmt Layer Power_model Repeater_model
