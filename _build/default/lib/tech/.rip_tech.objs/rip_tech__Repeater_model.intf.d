lib/tech/repeater_model.mli: Fmt
