(** Metal layer RC characteristics.

    Global nets in the paper's evaluation are routed on metal4 and metal5
    of a 0.18 um process; each wire segment carries the per-unit-length
    resistance and capacitance of its layer. *)

type t = {
  name : string;
  resistance_per_um : float;  (** Ohm per micron *)
  capacitance_per_um : float;  (** F per micron *)
}

val create : name:string -> resistance_per_um:float -> capacitance_per_um:float -> t
(** @raise Invalid_argument when either RC value is not strictly positive. *)

val metal4 : t
(** Default 0.18 um metal4: 0.06 Ohm/um, 0.48 fF/um (coupling included). *)

val metal5 : t
(** Default 0.18 um metal5: 0.05 Ohm/um, 0.52 fF/um (coupling included). *)

val equal : t -> t -> bool
val pp : t Fmt.t
