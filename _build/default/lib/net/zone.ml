type t = {
  z_start : float;
  z_end : float;
}

let create ~z_start ~z_end =
  if z_start < 0.0 then invalid_arg "Zone.create: negative start";
  if z_end <= z_start then invalid_arg "Zone.create: end must exceed start";
  { z_start; z_end }

let length z = z.z_end -. z.z_start
let contains z x = x > z.z_start && x < z.z_end
let overlaps a b = a.z_start < b.z_end && b.z_start < a.z_end

let normalize zones =
  let sorted =
    List.sort (fun a b -> Float.compare a.z_start b.z_start) zones
  in
  let merge acc z =
    match acc with
    | [] -> [ z ]
    | prev :: rest ->
        if z.z_start <= prev.z_end then
          { prev with z_end = Float.max prev.z_end z.z_end } :: rest
        else z :: acc
  in
  List.rev (List.fold_left merge [] sorted)

let blocked zones x = List.exists (fun z -> contains z x) zones

let first_allowed_at_or_after zones x =
  List.fold_left (fun pos z -> if contains z pos then z.z_end else pos) x zones

let last_allowed_at_or_before zones x =
  (* Walk right-to-left so a cascade of touching zones resolves fully. *)
  List.fold_left
    (fun pos z -> if contains z pos then z.z_start else pos)
    x (List.rev zones)

let equal a b = a.z_start = b.z_start && a.z_end = b.z_end
let pp ppf z = Fmt.pf ppf "(%g, %g)" z.z_start z.z_end
