(** One routed wire segment of a multi-layer two-pin interconnect
    (Figure 1 of the paper): a fixed length with the per-unit-length RC of
    the layer it is routed on. *)

type t = {
  length : float;  (** um, strictly positive *)
  resistance_per_um : float;  (** Ohm/um, strictly positive *)
  capacitance_per_um : float;  (** F/um, strictly positive *)
  layer_name : string;  (** informational; "custom" when built from raw RC *)
}

val create :
  ?layer_name:string -> length:float -> resistance_per_um:float ->
  capacitance_per_um:float -> unit -> t
(** @raise Invalid_argument when any numeric field is not strictly
    positive. *)

val of_layer : Rip_tech.Layer.t -> length:float -> t
(** Segment routed on a named process layer. *)

val total_resistance : t -> float
(** [length *. resistance_per_um]. *)

val total_capacitance : t -> float
(** [length *. capacitance_per_um]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
