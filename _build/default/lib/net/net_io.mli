(** Plain-text net files.

    The format is line-oriented; [#] starts a comment.  Lengths are um,
    resistance Ohm/um, capacitance fF/um (converted to F internally), pin
    widths in u:

    {v
    net clk_spine
    driver 120
    receiver 60
    segment 1800 0.075 0.118 metal4
    segment 2200 0.045 0.134 metal5
    zone 1500 2600
    v}

    Order of [segment] lines is routing order; [zone] lines may appear
    anywhere.  [driver]/[receiver]/at least one [segment] are mandatory. *)

val parse_string : string -> (Net.t, string) result
(** Parse a whole file body.  Errors carry a 1-based line number. *)

val parse_file : string -> (Net.t, string) result
(** Read and parse a file; I/O failures become [Error]. *)

val to_string : Net.t -> string
(** Render in the file format; [parse_string (to_string n)] equals [n] up
    to float formatting (round-trip is exact for values printed with
    [%.17g], which this uses). *)

val write_file : string -> Net.t -> unit
(** @raise Sys_error on I/O failure. *)
