(** Forbidden zones: open intervals [(zs, ze)] of the net where no repeater
    may be placed (the net crosses a macro-block there).  Following the
    paper's Problem LPRI, the endpoints themselves are legal repeater
    positions. *)

type t = private {
  z_start : float;  (** um from the driver *)
  z_end : float;
}

val create : z_start:float -> z_end:float -> t
(** @raise Invalid_argument unless [0. <= z_start < z_end]. *)

val length : t -> float

val contains : t -> float -> bool
(** [contains z x] is true when [x] lies strictly inside the open interval
    [(z_start, z_end)]. *)

val overlaps : t -> t -> bool
(** True when the two open intervals intersect. *)

val normalize : t list -> t list
(** Sort by start and merge overlapping/touching zones.
    The result is sorted and pairwise disjoint. *)

val blocked : t list -> float -> bool
(** [blocked zones x] is true when some zone contains [x]. *)

val first_allowed_at_or_after : t list -> float -> float
(** Smallest legal position [>= x] given normalized [zones] (a position
    inside a zone snaps to that zone's end). *)

val last_allowed_at_or_before : t list -> float -> float
(** Largest legal position [<= x] given normalized [zones]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
