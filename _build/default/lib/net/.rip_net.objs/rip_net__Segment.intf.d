lib/net/segment.mli: Fmt Rip_tech
