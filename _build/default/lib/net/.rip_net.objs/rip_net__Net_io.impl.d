lib/net/net_io.ml: Array Buffer In_channel List Net Out_channel Printf Result Segment String Zone
