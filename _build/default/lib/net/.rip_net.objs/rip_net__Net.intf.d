lib/net/net.mli: Fmt Rip_tech Segment Zone
