lib/net/geometry.ml: Array Float Net Printf Segment
