lib/net/geometry.mli: Net
