lib/net/net.ml: Array Fmt List Segment String Zone
