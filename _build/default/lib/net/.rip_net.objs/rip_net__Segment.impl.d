lib/net/segment.ml: Fmt Rip_tech String
