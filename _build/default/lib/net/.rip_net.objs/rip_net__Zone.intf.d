lib/net/zone.mli: Fmt
