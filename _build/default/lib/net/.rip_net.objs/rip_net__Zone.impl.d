lib/net/zone.ml: Float Fmt List
