type side = Left | Right

type t = {
  net : Net.t;
  starts : float array;  (* position where segment i begins; length m+1,
                            starts.(m) = L *)
  r_prefix : float array;  (* R(starts.(i)) *)
  c_prefix : float array;  (* C(starts.(i)) *)
  p_prefix : float array;  (* P(starts.(i)) = int_0^x r C *)
}

let position_tolerance = 1e-6

let of_net net =
  let segments = net.Net.segments in
  let m = Array.length segments in
  let starts = Array.make (m + 1) 0.0 in
  let r_prefix = Array.make (m + 1) 0.0 in
  let c_prefix = Array.make (m + 1) 0.0 in
  let p_prefix = Array.make (m + 1) 0.0 in
  for i = 0 to m - 1 do
    let s = segments.(i) in
    let len = s.Segment.length in
    let r = s.Segment.resistance_per_um in
    let c = s.Segment.capacitance_per_um in
    starts.(i + 1) <- starts.(i) +. len;
    r_prefix.(i + 1) <- r_prefix.(i) +. (r *. len);
    c_prefix.(i + 1) <- c_prefix.(i) +. (c *. len);
    (* P over the segment: C(t) = C0 + c (t - x0) with constant r. *)
    p_prefix.(i + 1) <-
      p_prefix.(i)
      +. (r *. ((c_prefix.(i) *. len) +. (0.5 *. c *. len *. len)))
  done;
  { net; starts; r_prefix; c_prefix; p_prefix }

let net g = g.net
let total_length g = g.starts.(Array.length g.starts - 1)
let boundaries g = Array.to_list g.starts

let clamp g x =
  let length = total_length g in
  if x < -.position_tolerance || x > length +. position_tolerance then
    invalid_arg
      (Printf.sprintf "Geometry: position %g outside net [0, %g]" x length);
  Float.max 0.0 (Float.min length x)

(* Largest i with starts.(i) <= x, searched over starts.(0..m). *)
let boundary_index g x =
  let last = Array.length g.starts - 1 in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if g.starts.(mid) <= x then search mid hi else search lo (mid - 1)
  in
  search 0 last

let segment_index_at g side x =
  let x = clamp g x in
  let m = Array.length g.net.Net.segments in
  let i = boundary_index g x in
  let at_boundary = Float.abs (g.starts.(i) -. x) <= position_tolerance in
  let i =
    match side with
    | Right -> i
    | Left -> if at_boundary then i - 1 else i
  in
  if i < 0 then 0 else if i > m - 1 then m - 1 else i

(* Cumulative R at an arbitrary position. *)
let r_at g x =
  let x = clamp g x in
  let i = boundary_index g x in
  if i >= Array.length g.net.Net.segments then g.r_prefix.(i)
  else
    let s = g.net.Net.segments.(i) in
    g.r_prefix.(i) +. (s.Segment.resistance_per_um *. (x -. g.starts.(i)))

let c_at g x =
  let x = clamp g x in
  let i = boundary_index g x in
  if i >= Array.length g.net.Net.segments then g.c_prefix.(i)
  else
    let s = g.net.Net.segments.(i) in
    g.c_prefix.(i) +. (s.Segment.capacitance_per_um *. (x -. g.starts.(i)))

let p_at g x =
  let x = clamp g x in
  let i = boundary_index g x in
  if i >= Array.length g.net.Net.segments then g.p_prefix.(i)
  else
    let s = g.net.Net.segments.(i) in
    let dx = x -. g.starts.(i) in
    let r = s.Segment.resistance_per_um in
    let c = s.Segment.capacitance_per_um in
    g.p_prefix.(i) +. (r *. ((g.c_prefix.(i) *. dx) +. (0.5 *. c *. dx *. dx)))

let check_ordered name a b =
  if a > b +. position_tolerance then
    invalid_arg (Printf.sprintf "Geometry.%s: a > b (%g > %g)" name a b)

let resistance_between g a b =
  check_ordered "resistance_between" a b;
  if a >= b then 0.0 else r_at g b -. r_at g a

let capacitance_between g a b =
  check_ordered "capacitance_between" a b;
  if a >= b then 0.0 else c_at g b -. c_at g a

(* D(a,b) = int_a^b r (C(b) - C(t)) dt = (R(b)-R(a)) C(b) - (P(b)-P(a)). *)
let wire_elmore_between g a b =
  check_ordered "wire_elmore_between" a b;
  if a >= b then 0.0
  else
    let d =
      ((r_at g b -. r_at g a) *. c_at g b) -. (p_at g b -. p_at g a)
    in
    (* Exact value is non-negative; cancellation can leave a tiny negative. *)
    Float.max 0.0 d

let cumulative_resistance = r_at
let cumulative_capacitance = c_at
let cumulative_rc_moment = p_at

let unit_rc_at g side x =
  let i = segment_index_at g side x in
  let s = g.net.Net.segments.(i) in
  (s.Segment.resistance_per_um, s.Segment.capacitance_per_um)
