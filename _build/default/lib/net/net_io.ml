let femto = 1e-15

type accumulator = {
  mutable name : string;
  mutable driver : float option;
  mutable receiver : float option;
  mutable segments_rev : Segment.t list;
  mutable zones_rev : Zone.t list;
}

let fresh () =
  { name = "net"; driver = None; receiver = None; segments_rev = [];
    zones_rev = [] }

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: bad %s %S" lineno what s)

let ( let* ) = Result.bind

let parse_line acc lineno line =
  match tokens line with
  | [] -> Ok ()
  | [ "net"; name ] ->
      acc.name <- name;
      Ok ()
  | [ "driver"; w ] ->
      let* w = parse_float lineno "driver width" w in
      acc.driver <- Some w;
      Ok ()
  | [ "receiver"; w ] ->
      let* w = parse_float lineno "receiver width" w in
      acc.receiver <- Some w;
      Ok ()
  | "segment" :: length :: r :: c :: rest ->
      let* length = parse_float lineno "segment length" length in
      let* r = parse_float lineno "segment resistance" r in
      let* c = parse_float lineno "segment capacitance" c in
      let layer_name =
        match rest with
        | [] -> "custom"
        | [ name ] -> name
        | _ -> "custom"
      in
      (match
         Segment.create ~layer_name ~length ~resistance_per_um:r
           ~capacitance_per_um:(c *. femto) ()
       with
      | seg ->
          acc.segments_rev <- seg :: acc.segments_rev;
          Ok ()
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg))
  | [ "zone"; zs; ze ] ->
      let* zs = parse_float lineno "zone start" zs in
      let* ze = parse_float lineno "zone end" ze in
      (match Zone.create ~z_start:zs ~z_end:ze with
      | z ->
          acc.zones_rev <- z :: acc.zones_rev;
          Ok ()
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg))
  | word :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" lineno word)

let parse_string body =
  let acc = fresh () in
  let lines = String.split_on_char '\n' body in
  let rec feed lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line acc lineno line with
        | Ok () -> feed (lineno + 1) rest
        | Error _ as e -> e)
  in
  let* () = feed 1 lines in
  match (acc.driver, acc.receiver, List.rev acc.segments_rev) with
  | None, _, _ -> Error "missing 'driver' line"
  | _, None, _ -> Error "missing 'receiver' line"
  | _, _, [] -> Error "no 'segment' lines"
  | Some driver_width, Some receiver_width, segments -> (
      match
        Net.create ~name:acc.name ~segments ~zones:(List.rev acc.zones_rev)
          ~driver_width ~receiver_width ()
      with
      | net -> Ok net
      | exception Invalid_argument msg -> Error msg)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | body -> parse_string body
  | exception Sys_error msg -> Error msg

let to_string (net : Net.t) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "net %s\n" net.name);
  Buffer.add_string buffer (Printf.sprintf "driver %.17g\n" net.driver_width);
  Buffer.add_string buffer
    (Printf.sprintf "receiver %.17g\n" net.receiver_width);
  Array.iter
    (fun (s : Segment.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "segment %.17g %.17g %.17g %s\n" s.length
           s.resistance_per_um
           (s.capacitance_per_um /. femto)
           s.layer_name))
    net.segments;
  List.iter
    (fun (z : Zone.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "zone %.17g %.17g\n" z.z_start z.z_end))
    net.zones;
  Buffer.contents buffer

let write_file path net =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string net))
