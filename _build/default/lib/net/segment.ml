type t = {
  length : float;
  resistance_per_um : float;
  capacitance_per_um : float;
  layer_name : string;
}

let create ?(layer_name = "custom") ~length ~resistance_per_um
    ~capacitance_per_um () =
  if length <= 0.0 then invalid_arg "Segment.create: length must be positive";
  if resistance_per_um <= 0.0 || capacitance_per_um <= 0.0 then
    invalid_arg "Segment.create: RC values must be positive";
  { length; resistance_per_um; capacitance_per_um; layer_name }

let of_layer (layer : Rip_tech.Layer.t) ~length =
  create ~layer_name:layer.name ~length
    ~resistance_per_um:layer.resistance_per_um
    ~capacitance_per_um:layer.capacitance_per_um ()

let total_resistance s = s.length *. s.resistance_per_um
let total_capacitance s = s.length *. s.capacitance_per_um

let equal a b =
  a.length = b.length
  && a.resistance_per_um = b.resistance_per_um
  && a.capacitance_per_um = b.capacitance_per_um
  && String.equal a.layer_name b.layer_name

let pp ppf s =
  Fmt.pf ppf "%s[%gum, %g Ohm/um, %g F/um]" s.layer_name s.length
    s.resistance_per_um s.capacitance_per_um
