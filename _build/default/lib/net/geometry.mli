(** Prefix-sum geometry engine over a net.

    Precomputes, at every segment boundary, cumulative wire resistance
    [R(x) = int_0^x r], capacitance [C(x) = int_0^x c] and the mixed moment
    [P(x) = int_0^x r(t) C(t) dt], so that the wire resistance, capacitance
    and distributed Elmore term between any two positions are O(log m)
    (binary search) with exact piecewise-constant integration — no
    re-walking of segments in the DP inner loop. *)

type t

type side = Left | Right
(** Which side of a position to sample at a segment boundary, where the
    per-unit-length RC is discontinuous (used by Eqs. (17) and (18)). *)

val of_net : Net.t -> t
val net : t -> Net.t
val total_length : t -> float

val segment_index_at : t -> side -> float -> int
(** Index of the segment covering position [x]; at an interior boundary the
    [side] picks the earlier or later segment.  Positions are clamped to
    [0, L] within a small tolerance.
    @raise Invalid_argument when [x] is outside the net beyond tolerance. *)

val resistance_between : t -> float -> float -> float
(** [resistance_between g a b] is [int_a^b r(t) dt], Ohm.  Requires
    [a <= b] (within tolerance). *)

val capacitance_between : t -> float -> float -> float
(** [capacitance_between g a b] is [int_a^b c(t) dt], F. *)

val wire_elmore_between : t -> float -> float -> float
(** [wire_elmore_between g a b] is the distributed wire delay
    [int_a^b r(t) (C(b) - C(t)) dt], seconds — the last term of Eq. (1). *)

val unit_rc_at : t -> side -> float -> float * float
(** Per-unit-length [(r, c)] of the wire immediately on the given side of
    the position (the [r_{i1}, c_{i1}] / [r_{(i-1)k}, c_{(i-1)k}] of
    Eqs. (17)–(18)).  At [x = 0.] only [Right] is meaningful and [Left]
    falls back to the first segment; symmetrically at [x = L]. *)

val boundaries : t -> float list
(** Segment boundary positions including 0 and L, ascending. *)

val cumulative_resistance : t -> float -> float
(** [R(x) = int_0^x r(t) dt], Ohm. *)

val cumulative_capacitance : t -> float -> float
(** [C(x) = int_0^x c(t) dt], F. *)

val cumulative_rc_moment : t -> float -> float
(** [P(x) = int_0^x r(t) C(t) dt], seconds.  Together with [R] and [C] this
    gives the wire Elmore of a span as
    [(R(b) - R(a)) * C(b) - (P(b) - P(a))]; DP clients precompute these
    three values per candidate site to make stage delays pure arithmetic. *)
