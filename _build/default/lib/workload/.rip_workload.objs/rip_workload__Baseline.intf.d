lib/workload/baseline.mli: Rip_dp Rip_net Rip_tech
