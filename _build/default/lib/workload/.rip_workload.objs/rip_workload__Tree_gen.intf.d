lib/workload/tree_gen.mli: Rip_numerics Rip_tech Rip_tree
