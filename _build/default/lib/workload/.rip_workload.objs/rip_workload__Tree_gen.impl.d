lib/workload/tree_gen.ml: Int64 List Printf Rip_numerics Rip_tech Rip_tree Suite
