lib/workload/experiments.ml: Baseline Float List Option Printf Rip_core Rip_dp Rip_net Rip_numerics Stdlib String Suite Table
