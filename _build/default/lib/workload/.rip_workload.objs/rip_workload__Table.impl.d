lib/workload/table.ml: List Printf Stdlib String
