lib/workload/netgen.ml: Int64 List Printf Rip_net Rip_numerics Rip_tech
