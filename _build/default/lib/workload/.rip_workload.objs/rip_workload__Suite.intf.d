lib/workload/suite.mli: Rip_net
