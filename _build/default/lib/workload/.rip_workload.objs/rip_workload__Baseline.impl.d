lib/workload/baseline.ml: Printf Rip_dp Rip_net Rip_tech Unix
