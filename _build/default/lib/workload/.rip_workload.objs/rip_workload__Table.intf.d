lib/workload/table.mli:
