lib/workload/tree_experiments.mli: Rip_tech Rip_tree
