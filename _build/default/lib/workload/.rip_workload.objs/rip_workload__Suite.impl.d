lib/workload/suite.ml: List Netgen Rip_numerics
