lib/workload/netgen.mli: Rip_net Rip_numerics Rip_tech
