lib/workload/tree_experiments.ml: List Printf Rip_dp Rip_numerics Rip_tech Rip_tree Stdlib Table Tree_gen Unix
