lib/workload/experiments.mli: Baseline Rip_core Rip_dp Rip_net Rip_tech
