(** Experiment runner for the tree extension (DESIGN.md experiment id
    [tree]): the hybrid scheme against pure DPs on random tree
    benchmarks — coarse-only DP for quality, fine-grid DP for runtime. *)

type row = {
  tree_name : string;
  sinks : int;
  tau_min : float;
  hybrid_mean_width : float;  (** mean over targets, u *)
  coarse_mean_width : float;  (** coarse-only DP, same targets *)
  fine_mean_width : float;  (** 20u fixed-range DP at 200 um pitch (10u is
      prohibitively slow on 5-sink trees; see EXPERIMENTS.md) *)
  saving_vs_coarse : float;  (** % *)
  hybrid_mean_runtime : float;  (** s per target *)
  fine_mean_runtime : float;
  hybrid_violations : int;  (** targets the hybrid could not meet *)
}

val run :
  ?trees:Rip_tree.Tree.t list -> ?targets_per_tree:int ->
  Rip_tech.Process.t -> row list

val render : row list -> string
