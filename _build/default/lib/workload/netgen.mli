(** Random interconnect generator following the paper's Section 6 recipe:
    4-10 segments of 1000-2500 um, each routed on metal4 or metal5, and a
    single forbidden zone covering 20-40 % of the net, uniformly located.

    Driver and receiver widths are not specified by the paper; the defaults
    (20u / 40u) are typical global-net pin strengths and are configurable.

    Generation is keyed by a {!Rip_numerics.Prng} stream so the same seed
    and net index always produce the same net, on any machine. *)

type config = {
  min_segments : int;
  max_segments : int;
  min_segment_length : float;  (** um *)
  max_segment_length : float;
  zone_fraction_min : float;  (** forbidden-zone length over net length *)
  zone_fraction_max : float;
  zone_count : int;  (** the paper uses exactly 1 *)
  driver_width : float;  (** u *)
  receiver_width : float;
  layers : Rip_tech.Layer.t list;  (** drawn uniformly per segment *)
}

val default : config
(** The Section 6 values: 4-10 segments, 1000-2500 um, one zone of
    20-40 %, metal4/metal5. *)

val generate : ?config:config -> Rip_numerics.Prng.t -> index:int ->
  Rip_net.Net.t
(** [generate rng ~index] derives an independent stream for [index] from
    [rng]'s seed, so nets of a suite do not depend on generation order. *)
