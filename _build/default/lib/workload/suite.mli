(** The fixed benchmark suite: the reproduction's stand-in for the paper's
    20 routed nets (DESIGN.md, "benchmark-net substitution").  Every run
    sees the same 20 nets because the generator seed is pinned here. *)

val default_seed : int64
val default_count : int

val nets : ?seed:int64 -> ?count:int -> unit -> Rip_net.Net.t list
(** The suite, net ids 1..count. *)

val target_multiple : int -> float
(** [1.05 + k/19]: the k-th timing-target multiple, so the default 20
    targets span 1.05 to 2.05 times the minimum delay as in the paper. *)

val timing_targets : ?count:int -> tau_min:float -> unit -> float list
(** The paper's 20 budgets per net: [target_multiple k * tau_min] for
    [k = 0 .. count-1]. *)
