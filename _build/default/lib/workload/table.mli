(** Plain-text table rendering for the experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned ASCII table with a header rule.  Ragged rows are padded
    with empty cells. *)

val percent : float -> string
(** Two-decimal percent cell, e.g. ["22.95"]. *)

val seconds : float -> string
(** Runtime cell with adaptive precision. *)
