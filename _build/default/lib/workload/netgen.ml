module Prng = Rip_numerics.Prng
module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone

type config = {
  min_segments : int;
  max_segments : int;
  min_segment_length : float;
  max_segment_length : float;
  zone_fraction_min : float;
  zone_fraction_max : float;
  zone_count : int;
  driver_width : float;
  receiver_width : float;
  layers : Rip_tech.Layer.t list;
}

let default =
  {
    min_segments = 4;
    max_segments = 10;
    min_segment_length = 1000.0;
    max_segment_length = 2500.0;
    zone_fraction_min = 0.20;
    zone_fraction_max = 0.40;
    zone_count = 1;
    driver_width = 20.0;
    receiver_width = 40.0;
    layers = [ Rip_tech.Layer.metal4; Rip_tech.Layer.metal5 ];
  }

let pick_layer rng layers =
  match layers with
  | [] -> invalid_arg "Netgen: no layers configured"
  | layers -> List.nth layers (Prng.int_range rng 0 (List.length layers - 1))

let generate ?(config = default) rng ~index =
  let rng = Prng.derive rng (Int64.of_int index) in
  let segment_count =
    Prng.int_range rng config.min_segments config.max_segments
  in
  let segment _ =
    let length =
      Prng.float_range rng config.min_segment_length
        config.max_segment_length
    in
    Segment.of_layer (pick_layer rng config.layers) ~length
  in
  let segments = List.init segment_count segment in
  let total =
    List.fold_left (fun acc s -> acc +. s.Segment.length) 0.0 segments
  in
  let zone _ =
    let fraction =
      Prng.float_range rng config.zone_fraction_min config.zone_fraction_max
    in
    let zone_length = fraction *. total in
    let z_start = Prng.float_range rng 0.0 (total -. zone_length) in
    Zone.create ~z_start ~z_end:(z_start +. zone_length)
  in
  let zones = List.init config.zone_count zone in
  Net.create
    ~name:(Printf.sprintf "net%02d" index)
    ~segments ~zones ~driver_width:config.driver_width
    ~receiver_width:config.receiver_width ()
