let default_seed = 0x52495031L (* "RIP1" *)
let default_count = 20

let nets ?(seed = default_seed) ?(count = default_count) () =
  let rng = Rip_numerics.Prng.create seed in
  List.init count (fun i -> Netgen.generate rng ~index:(i + 1))

let target_multiple k = 1.05 +. (float_of_int k /. 19.0)

let timing_targets ?(count = 20) ~tau_min () =
  List.init count (fun k -> target_multiple k *. tau_min)
