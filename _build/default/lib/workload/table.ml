let pad cell width = cell ^ String.make (width - String.length cell) ' '

let render ~header ~rows =
  let columns =
    List.fold_left (fun acc row -> Stdlib.max acc (List.length row))
      (List.length header) rows
  in
  let fill row = row @ List.init (columns - List.length row) (fun _ -> "") in
  let all = List.map fill (header :: rows) in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          0 all)
  in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad cell (List.nth widths i)) row)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    ((line (fill header) :: rule :: List.map (fun r -> line (fill r)) rows)
    @ [ "" ])

let percent v = Printf.sprintf "%.2f" v

let seconds v =
  if v >= 10.0 then Printf.sprintf "%.1f" v
  else if v >= 0.1 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v
