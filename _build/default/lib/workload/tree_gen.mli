(** Random interconnect trees for the tree-extension experiments: random
    binary fanout topologies with Section-6-style edge lengths and layers,
    and optional forbidden ranges on edges. *)

type config = {
  min_sinks : int;
  max_sinks : int;
  min_edge_length : float;  (** um *)
  max_edge_length : float;
  zone_probability : float;  (** chance an edge carries a blocked range *)
  zone_fraction_min : float;  (** blocked length over edge length *)
  zone_fraction_max : float;
  driver_width : float;
  min_sink_load : float;  (** u *)
  max_sink_load : float;
  layers : Rip_tech.Layer.t list;
}

val default : config
(** 2-5 sinks, 800-2200 um edges, 30 % zoned edges of 20-40 %, 20u driver,
    30-60u sink loads, metal4/metal5. *)

val generate :
  ?config:config -> Rip_numerics.Prng.t -> index:int -> Rip_tree.Tree.t
(** Deterministic per (seed, index), like {!Netgen.generate}. *)

val suite : ?config:config -> ?seed:int64 -> ?count:int -> unit ->
  Rip_tree.Tree.t list
(** Fixed tree benchmark suite (default 10 trees). *)
