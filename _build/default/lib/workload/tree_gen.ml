module Prng = Rip_numerics.Prng
module Tree = Rip_tree.Tree

type config = {
  min_sinks : int;
  max_sinks : int;
  min_edge_length : float;
  max_edge_length : float;
  zone_probability : float;
  zone_fraction_min : float;
  zone_fraction_max : float;
  driver_width : float;
  min_sink_load : float;
  max_sink_load : float;
  layers : Rip_tech.Layer.t list;
}

let default =
  {
    min_sinks = 2;
    max_sinks = 5;
    min_edge_length = 800.0;
    max_edge_length = 2200.0;
    zone_probability = 0.3;
    zone_fraction_min = 0.20;
    zone_fraction_max = 0.40;
    driver_width = 20.0;
    min_sink_load = 30.0;
    max_sink_load = 60.0;
    layers = [ Rip_tech.Layer.metal4; Rip_tech.Layer.metal5 ];
  }

let pick_layer rng layers =
  match layers with
  | [] -> invalid_arg "Tree_gen: no layers configured"
  | layers -> List.nth layers (Prng.int_range rng 0 (List.length layers - 1))

let random_edge config rng builder ~parent =
  let length =
    Prng.float_range rng config.min_edge_length config.max_edge_length
  in
  let zones =
    if Prng.float_range rng 0.0 1.0 < config.zone_probability then begin
      let fraction =
        Prng.float_range rng config.zone_fraction_min
          config.zone_fraction_max
      in
      let zone_length = fraction *. length in
      let lo = Prng.float_range rng 0.0 (length -. zone_length) in
      [ (lo, lo +. zone_length) ]
    end
    else []
  in
  Tree.add_layer_edge builder ~parent ~zones
    (pick_layer rng config.layers)
    ~length

(* Grow a subtree delivering [sinks] leaves below [parent]. *)
let rec grow config rng builder ~parent ~sinks =
  let node = random_edge config rng builder ~parent in
  if sinks = 1 then
    Tree.set_sink builder ~node
      ~load_width:(Prng.float_range rng config.min_sink_load
                     config.max_sink_load)
  else begin
    let left = 1 + Prng.int_range rng 0 (sinks - 2) in
    grow config rng builder ~parent:node ~sinks:left;
    grow config rng builder ~parent:node ~sinks:(sinks - left)
  end

let generate ?(config = default) rng ~index =
  let rng = Prng.derive rng (Int64.of_int (0x7E000 + index)) in
  let builder =
    Tree.builder
      ~name:(Printf.sprintf "tree%02d" index)
      ~driver_width:config.driver_width ()
  in
  let sinks = Prng.int_range rng config.min_sinks config.max_sinks in
  grow config rng builder ~parent:0 ~sinks;
  Tree.build builder

let suite ?config ?(seed = Suite.default_seed) ?(count = 10) () =
  let rng = Prng.create seed in
  List.init count (fun i -> generate ?config rng ~index:(i + 1))
