module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Repeater_model = Rip_tech.Repeater_model

type t = {
  geometry : Geometry.t;
  repeater : Repeater_model.t;
  positions : float array;
  cum_r : float array;
  cum_c : float array;
  cum_p : float array;
  driver_width : float;
  receiver_width : float;
}

let position_tolerance = 1e-6

let create geometry repeater ~candidates =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let interior =
    List.filter
      (fun x ->
        x > position_tolerance && x < length -. position_tolerance)
      (List.sort_uniq Float.compare candidates)
  in
  let positions = Array.of_list ((0.0 :: interior) @ [ length ]) in
  let sample f = Array.map f positions in
  {
    geometry;
    repeater;
    positions;
    cum_r = sample (Geometry.cumulative_resistance geometry);
    cum_c = sample (Geometry.cumulative_capacitance geometry);
    cum_p = sample (Geometry.cumulative_rc_moment geometry);
    driver_width = net.Net.driver_width;
    receiver_width = net.Net.receiver_width;
  }

let site_count t = Array.length t.positions
let interior_count t = site_count t - 2
let is_interior t i = i > 0 && i < site_count t - 1

let stage_delay t ~from_site ~from_width ~to_site ~to_width =
  let rs = t.repeater.Repeater_model.rs in
  let co = t.repeater.Repeater_model.co in
  let wire_r = t.cum_r.(to_site) -. t.cum_r.(from_site) in
  let wire_c = t.cum_c.(to_site) -. t.cum_c.(from_site) in
  let wire_elmore =
    (wire_r *. t.cum_c.(to_site)) -. (t.cum_p.(to_site) -. t.cum_p.(from_site))
  in
  let gate_c = co *. to_width in
  Repeater_model.intrinsic_delay t.repeater
  +. (rs /. from_width *. (wire_c +. gate_c))
  +. (wire_r *. gate_c)
  +. wire_elmore
