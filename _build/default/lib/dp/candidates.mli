(** Candidate repeater locations for the DP passes.

    All generators return strictly interior positions ([0 < x < L]),
    ascending, de-duplicated, and outside every forbidden zone of the net
    — the "uniformly distributed along the interconnects ... excluding the
    forbidden zone" sites of Section 6, and the refined "locations derived
    by REFINE plus [radius] locations before and after, with granularity
    [pitch]" sites of RIP line 3. *)

val uniform : Rip_net.Net.t -> pitch:float -> float list
(** Multiples of [pitch] strictly inside the net, zone-filtered.
    @raise Invalid_argument when [pitch <= 0.]. *)

val around :
  Rip_net.Net.t -> centers:float list -> radius:int -> pitch:float ->
  float list
(** For each center [c]: [c + k * pitch] for [k = -radius .. radius],
    clipped to the interior and zone-filtered, merged over all centers.
    @raise Invalid_argument when [pitch <= 0.] or [radius < 0]. *)

val merge : float list -> float list -> float list
(** Union of two ascending candidate lists, de-duplicated with the same
    position tolerance the generators use. *)
