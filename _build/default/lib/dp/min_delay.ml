module Solution = Rip_elmore.Solution

type result = {
  solution : Solution.t;
  delay : float;
}

type cell = {
  mutable best : float;
  mutable pred_site : int;
  mutable pred_width : int;
}

let solve geometry repeater ~library ~candidates =
  let chain = Chain.create geometry repeater ~candidates in
  let n_sites = Chain.site_count chain in
  let last = n_sites - 1 in
  let lib = Repeater_library.to_array library in
  let widths_at site =
    if site = 0 then [| chain.Chain.driver_width |]
    else if site = last then [| chain.Chain.receiver_width |]
    else lib
  in
  let cells =
    Array.init n_sites (fun site ->
        Array.init (Array.length (widths_at site)) (fun _ ->
            { best = Float.infinity; pred_site = -1; pred_width = -1 }))
  in
  cells.(0).(0).best <- 0.0;
  for site = 1 to last do
    let site_widths = widths_at site in
    for wj = 0 to Array.length site_widths - 1 do
      let cell = cells.(site).(wj) in
      for src = 0 to site - 1 do
        let src_widths = widths_at src in
        for wi = 0 to Array.length src_widths - 1 do
          let arrival = cells.(src).(wi).best in
          if arrival < Float.infinity then begin
            let total =
              arrival
              +. Chain.stage_delay chain ~from_site:src
                   ~from_width:src_widths.(wi) ~to_site:site
                   ~to_width:site_widths.(wj)
            in
            if total < cell.best then begin
              cell.best <- total;
              cell.pred_site <- src;
              cell.pred_width <- wi
            end
          end
        done
      done
    done
  done;
  let rec backtrack site wj acc =
    if site <= 0 then acc
    else
      let cell = cells.(site).(wj) in
      let acc =
        if Chain.is_interior chain site then
          (chain.Chain.positions.(site), (widths_at site).(wj)) :: acc
        else acc
      in
      backtrack cell.pred_site cell.pred_width acc
  in
  let solution = Solution.create (backtrack last 0 []) in
  { solution; delay = cells.(last).(0).best }

let tau_min geometry repeater ~library ~candidates =
  (solve geometry repeater ~library ~candidates).delay
