(** Brute-force reference optimiser for tiny instances.

    Enumerates every subset of the candidate sites and every width
    assignment from the library, evaluating each full solution through
    {!Rip_elmore.Delay}.  Exponential — intended for cross-checking the DP
    on instances with at most a handful of sites (the test suite uses it to
    certify {!Power_dp} and {!Min_delay} optimality). *)

val enumeration_size :
  sites:int -> library_size:int -> int
(** Number of solutions enumerated: [(library_size + 1) ^ sites]. *)

val min_width_under_budget :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> budget:float ->
  (Rip_elmore.Solution.t * float) option
(** Minimum-total-width solution meeting the budget, or [None].
    @raise Invalid_argument when the enumeration would exceed 10 million
    solutions. *)

val min_delay :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list ->
  Rip_elmore.Solution.t * float
(** Minimum-delay solution over the same space (the empty insertion is
    included). *)
