module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay

let enumeration_size ~sites ~library_size =
  let rec power acc k = if k = 0 then acc else power (acc * (library_size + 1)) (k - 1) in
  power 1 sites

let max_enumeration = 10_000_000

(* Visit every assignment of (no repeater | width from library) per site. *)
let iter_solutions ~library ~candidates visit =
  let sites = Array.of_list candidates in
  let widths = Repeater_library.to_array library in
  let n = Array.length sites in
  if enumeration_size ~sites:n ~library_size:(Array.length widths)
     > max_enumeration
  then invalid_arg "Exhaustive: instance too large";
  let rec assign idx placements =
    if idx = n then visit (Solution.create placements)
    else begin
      assign (idx + 1) placements;
      Array.iter
        (fun w -> assign (idx + 1) ((sites.(idx), w) :: placements))
        widths
    end
  in
  assign 0 []

let min_width_under_budget geometry repeater ~library ~candidates ~budget =
  let best = ref None in
  let better width delay =
    match !best with
    | None -> true
    | Some (_, bw, bd) ->
        width < bw -. 1e-12
        || (Float.abs (width -. bw) <= 1e-12 && delay < bd)
  in
  iter_solutions ~library ~candidates (fun solution ->
      let delay = Delay.total repeater geometry solution in
      if delay <= budget then begin
        let width = Solution.total_width solution in
        if better width delay then best := Some (solution, width, delay)
      end);
  Option.map (fun (solution, width, _) -> (solution, width)) !best

let min_delay geometry repeater ~library ~candidates =
  let best = ref (Solution.empty, Delay.total repeater geometry Solution.empty)
  in
  iter_solutions ~library ~candidates (fun solution ->
      let delay = Delay.total repeater geometry solution in
      let _, best_delay = !best in
      if delay < best_delay then best := (solution, delay));
  !best
