(** Discrete repeater libraries for the DP passes.

    Widths are in units of the minimal repeater width [u] and are kept
    ascending and de-duplicated.  The paper's experiments use three library
    shapes, all constructible here: the coarse RIP seed library
    ({!uniform} with min 80u, step 80u, 5 entries), the baseline [14]
    libraries ({!uniform} with min 10u, step [g], 10 entries), and the
    Table-2 fixed-range libraries ({!range} over (10u, 400u) with step
    [g_DP]). *)

type t = private float array
(** Ascending, distinct, strictly positive widths. *)

val create : float list -> t
(** Sorts and de-duplicates.
    @raise Invalid_argument on an empty list or a non-positive width. *)

val uniform : min_width:float -> step:float -> count:int -> t
(** [min_width + k * step] for [k = 0 .. count-1]. *)

val range : min_width:float -> max_width:float -> step:float -> t
(** [min_width, min_width + step, ...] up to [max_width] inclusive. *)

val round_to_grid :
  granularity:float -> min_width:float -> max_width:float -> float list -> t
(** RIP line 3: snap each continuous width to the nearest multiple of
    [granularity], clamp into [min_width, max_width], de-duplicate.  To keep
    the follow-up DP robust against rounding in the unlucky direction, the
    immediate grid neighbours of each snapped width (within the clamp) are
    included as well. *)

val widths : t -> float list
val to_array : t -> float array
val size : t -> int
val min_width : t -> float
val max_width : t -> float
val mem : t -> float -> bool
val pp : t Fmt.t
