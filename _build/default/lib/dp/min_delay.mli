(** Minimum-delay repeater insertion over a candidate grid — the classic
    van Ginneken-style DP, used to anchor the timing targets: the paper
    sweeps budgets from 1.05 to 2.05 times [tau_min].

    Unlike the power DP, each state only needs the scalar best arrival
    delay, so the run is fast even with rich libraries. *)

type result = {
  solution : Rip_elmore.Solution.t;
  delay : float;  (** tau_min over the given sites and library *)
}

val solve :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> result
(** Always succeeds (the empty insertion is a valid fallback). *)

val tau_min :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> float
(** [(solve ...).delay]. *)
