(** Power-minimal repeater insertion under a delay budget — the DP of
    Lillis, Cheng & Lin (ref. [14] of the paper), specialised to two-pin
    chains.

    Every DP state is a (candidate site, repeater width) pair; a state
    carries the Pareto frontier of [(arrival delay, total width so far)]
    labels over all ways of reaching it.  Transitions append one Eq.-(1)
    stage delay.  Labels exceeding the budget are discarded eagerly
    (delay only grows along the chain), and frontiers are bucketed by
    quantised total width so each distinct width keeps only its fastest
    label — the pseudo-polynomial bound of [14]. *)

type stats = {
  sites : int;  (** candidate sites including driver and receiver *)
  transitions : int;  (** stage-delay evaluations *)
  labels : int;  (** labels surviving pruning, summed over states *)
}

type result = {
  solution : Rip_elmore.Solution.t;
  total_width : float;  (** the optimised power proxy, u *)
  delay : float;  (** Elmore delay of [solution], seconds *)
  stats : stats;
}

val solve :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> budget:float ->
  result option
(** [None] when no repeater assignment over the given sites and library
    meets the budget.  The returned solution's delay is recomputed through
    {!Rip_elmore.Delay.total} and always satisfies [delay <= budget]. *)
