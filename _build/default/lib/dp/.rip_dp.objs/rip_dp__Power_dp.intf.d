lib/dp/power_dp.mli: Repeater_library Rip_elmore Rip_net Rip_tech
