lib/dp/candidates.mli: Rip_net
