lib/dp/repeater_library.mli: Fmt
