lib/dp/power_dp.ml: Array Chain Float Hashtbl List Repeater_library Rip_elmore
