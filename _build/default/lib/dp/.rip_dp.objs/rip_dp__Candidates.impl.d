lib/dp/candidates.ml: Float List Rip_net
