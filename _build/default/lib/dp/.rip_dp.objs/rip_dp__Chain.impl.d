lib/dp/chain.ml: Array Float List Rip_net Rip_tech
