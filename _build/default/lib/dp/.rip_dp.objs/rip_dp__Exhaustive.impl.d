lib/dp/exhaustive.ml: Array Float Option Repeater_library Rip_elmore
