lib/dp/repeater_library.ml: Array Float Fmt List
