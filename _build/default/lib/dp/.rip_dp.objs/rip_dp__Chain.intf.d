lib/dp/chain.mli: Rip_net Rip_tech
