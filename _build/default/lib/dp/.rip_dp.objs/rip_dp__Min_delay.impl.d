lib/dp/min_delay.ml: Array Chain Float Repeater_library Rip_elmore
