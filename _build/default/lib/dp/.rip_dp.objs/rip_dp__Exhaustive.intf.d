lib/dp/exhaustive.mli: Repeater_library Rip_elmore Rip_net Rip_tech
