lib/dp/min_delay.mli: Repeater_library Rip_elmore Rip_net Rip_tech
