(** Shared precomputation for the chain DPs.

    Flattens driver, interior candidate sites and receiver into one
    position array and precomputes cumulative wire R/C and the RC moment at
    every site, so a stage delay between any two sites is pure arithmetic
    (no geometry walks in the DP inner loops). *)

type t = {
  geometry : Rip_net.Geometry.t;
  repeater : Rip_tech.Repeater_model.t;
  positions : float array;  (** index 0 = driver at 0, last = receiver at L *)
  cum_r : float array;  (** R(positions.(i)) *)
  cum_c : float array;
  cum_p : float array;
  driver_width : float;
  receiver_width : float;
}

val create :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t -> candidates:float list ->
  t
(** Candidate sites are clipped to the open interval (0, L) and
    de-duplicated; they need not be zone-legal (legality is the candidate
    generator's contract). *)

val site_count : t -> int
(** Number of positions including driver and receiver. *)

val interior_count : t -> int

val stage_delay :
  t -> from_site:int -> from_width:float -> to_site:int -> to_width:float ->
  float
(** Eq. (1) between two sites, O(1). *)

val is_interior : t -> int -> bool
