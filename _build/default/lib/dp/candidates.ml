module Net = Rip_net.Net

let position_tolerance = 1e-6

let sanitize net positions =
  let length = Net.total_length net in
  let inside =
    List.filter
      (fun x ->
        x > position_tolerance
        && x < length -. position_tolerance
        && Net.position_legal net x)
      positions
  in
  let sorted = List.sort Float.compare inside in
  let dedup acc x =
    match acc with
    | prev :: _ when x -. prev <= position_tolerance -> acc
    | _ -> x :: acc
  in
  List.rev (List.fold_left dedup [] sorted)

let uniform net ~pitch =
  if pitch <= 0.0 then invalid_arg "Candidates.uniform: pitch <= 0";
  let length = Net.total_length net in
  let count = int_of_float (Float.floor (length /. pitch)) in
  sanitize net (List.init count (fun k -> float_of_int (k + 1) *. pitch))

let around net ~centers ~radius ~pitch =
  if pitch <= 0.0 then invalid_arg "Candidates.around: pitch <= 0";
  if radius < 0 then invalid_arg "Candidates.around: negative radius";
  let offsets =
    List.init ((2 * radius) + 1) (fun k -> float_of_int (k - radius) *. pitch)
  in
  sanitize net
    (List.concat_map (fun c -> List.map (fun o -> c +. o) offsets) centers)

let merge a b =
  let sorted = List.sort Float.compare (a @ b) in
  let dedup acc x =
    match acc with
    | prev :: _ when x -. prev <= position_tolerance -> acc
    | _ -> x :: acc
  in
  List.rev (List.fold_left dedup [] sorted)
