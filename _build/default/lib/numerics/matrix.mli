(** Dense linear algebra used by the analytical width solver.

    Matrices are row-major [float array array]; all functions operate on
    square systems of modest size (one row per repeater), so a direct
    Gaussian elimination with partial pivoting is appropriate. *)

exception Singular
(** Raised when elimination encounters a pivot below the tolerance. *)

val solve : float array array -> float array -> float array
(** [solve a b] returns [x] with [a x = b].  [a] and [b] are not modified.
    @raise Singular if [a] is (numerically) singular.
    @raise Invalid_argument on dimension mismatch. *)

val solve_in_place : float array array -> float array -> float array
(** As {!solve} but destroys the inputs, avoiding the defensive copy. *)

val mat_vec : float array array -> float array -> float array
(** [mat_vec a x] is the product [a x]. *)

val residual_norm : float array array -> float array -> float array -> float
(** [residual_norm a x b] is the max-norm of [a x - b]. *)
