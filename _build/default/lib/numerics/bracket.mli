(** Scalar root finding on monotone or at least sign-changing functions.

    Used by the width solver to find the Lagrange multiplier satisfying the
    delay constraint, where the objective is strictly monotone. *)

type outcome =
  | Root of float  (** a root within tolerance *)
  | No_sign_change of float * float
      (** the expanded bracket [(lo, hi)] never straddled zero *)

val expand_bracket :
  f:(float -> float) -> lo:float -> hi:float -> max_expansions:int ->
  (float * float) option
(** [expand_bracket ~f ~lo ~hi ~max_expansions] grows [hi] geometrically
    (and shrinks [lo] toward 0 when positive) until [f lo] and [f hi] have
    opposite signs.  Returns the bracketing pair, or [None]. *)

val bisect :
  f:(float -> float) -> lo:float -> hi:float -> tol:float -> max_iter:int ->
  float
(** [bisect ~f ~lo ~hi ~tol ~max_iter] finds a root of [f] inside a bracket
    with opposite-sign endpoints, by bisection combined with a secant
    (regula-falsi) step when it stays inside the bracket.  [tol] bounds the
    final bracket width relative to the magnitude of the endpoints.
    @raise Invalid_argument when the endpoints do not straddle zero. *)

val find_root :
  f:(float -> float) -> lo:float -> hi:float -> tol:float -> outcome
(** Convenience: expand the initial guess bracket then bisect. *)
