exception Singular

let pivot_tolerance = 1e-300

let mat_vec a x =
  let n = Array.length a in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let row = a.(i) in
    if Array.length row <> Array.length x then
      invalid_arg "Matrix.mat_vec: dimension mismatch";
    let acc = ref 0.0 in
    for j = 0 to Array.length x - 1 do
      acc := !acc +. (row.(j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let residual_norm a x b =
  let y = mat_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i yi -> worst := Float.max !worst (Float.abs (yi -. b.(i)))) y;
  !worst

(* Gaussian elimination with partial pivoting, destroying [a] and [b].
   Row swaps are physical; back substitution fills the result in place. *)
let solve_in_place a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Matrix.solve: dimension mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Matrix.solve: matrix not square")
    a;
  for k = 0 to n - 1 do
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!best).(k) then best := i
    done;
    if !best <> k then begin
      let row = a.(k) in
      a.(k) <- a.(!best);
      a.(!best) <- row;
      let v = b.(k) in
      b.(k) <- b.(!best);
      b.(!best) <- v
    end;
    let pivot = a.(k).(k) in
    if Float.abs pivot < pivot_tolerance || not (Float.is_finite pivot) then
      raise Singular;
    for i = k + 1 to n - 1 do
      let factor = a.(i).(k) /. pivot in
      if factor <> 0.0 then begin
        a.(i).(k) <- 0.0;
        for j = k + 1 to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (factor *. b.(k))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(i).(i)
  done;
  x

let solve a b =
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  solve_in_place a b
