lib/numerics/prng.mli:
