lib/numerics/newton.ml: Array Float Matrix
