lib/numerics/bracket.ml: Float
