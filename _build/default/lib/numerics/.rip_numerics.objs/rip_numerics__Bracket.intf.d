lib/numerics/bracket.mli:
