lib/numerics/newton.mli:
