lib/numerics/stats.mli:
