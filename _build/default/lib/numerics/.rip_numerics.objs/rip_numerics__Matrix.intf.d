lib/numerics/matrix.mli:
