type t = { mutable state : int64; seed : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finaliser (Steele, Lea & Flood, OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed; seed }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let derive g salt = create (mix (Int64.add g.seed (mix salt)))

(* Top 53 bits give a uniform double in [0,1). *)
let unit_float g =
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range g lo hi =
  if hi < lo then invalid_arg "Prng.float_range: hi < lo";
  lo +. ((hi -. lo) *. unit_float g)

let int_range g lo hi =
  if hi < lo then invalid_arg "Prng.int_range: hi < lo";
  let span = Int64.of_int (hi - lo + 1) in
  let raw = Int64.rem (next_int64 g) span in
  let raw = if Int64.compare raw 0L < 0 then Int64.add raw span else raw in
  lo + Int64.to_int raw

let bool g = Int64.logand (next_int64 g) 1L = 1L
