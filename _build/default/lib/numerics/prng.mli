(** Deterministic SplitMix64 pseudo-random generator.

    The workload suite must be byte-for-byte reproducible across runs and
    machines, so it cannot depend on [Stdlib.Random]'s evolving default
    state; this generator is self-contained and splittable by construction
    (derive an independent stream per net id). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val derive : t -> int64 -> t
(** [derive g salt] makes an independent child generator determined by the
    parent seed and [salt] (it does not advance [g]). *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val float_range : t -> float -> float -> float
(** [float_range g lo hi] draws uniformly from [[lo, hi)].
    @raise Invalid_argument when [hi < lo]. *)

val int_range : t -> int -> int -> int
(** [int_range g lo hi] draws uniformly from the inclusive range [lo..hi].
    @raise Invalid_argument when [hi < lo]. *)

val bool : t -> bool
(** Fair coin flip. *)
