(** Small summary statistics used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val max_value : float list -> float
(** Maximum; negative infinity on the empty list. *)

val min_value : float list -> float
(** Minimum; positive infinity on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,1], by linear interpolation between
    order statistics.  @raise Invalid_argument on the empty list or [p]
    outside [0,1]. *)

val ratio_percent : float -> float -> float
(** [ratio_percent base v] is the saving [(base - v) / base] in percent;
    0 when [base = 0]. *)
