type outcome =
  | Root of float
  | No_sign_change of float * float

let opposite_signs u v = (u <= 0.0 && v >= 0.0) || (u >= 0.0 && v <= 0.0)

let expand_bracket ~f ~lo ~hi ~max_expansions =
  let rec loop lo hi flo fhi k =
    if opposite_signs flo fhi then Some (lo, hi)
    else if k >= max_expansions then None
    else
      let lo' = lo /. 4.0 and hi' = hi *. 4.0 in
      loop lo' hi' (f lo') (f hi') (k + 1)
  in
  if hi <= lo then invalid_arg "Bracket.expand_bracket: hi <= lo";
  loop lo hi (f lo) (f hi) 0

(* Bisection with an interleaved secant step: the secant candidate is used
   whenever it falls strictly inside the current bracket, which gives
   superlinear convergence on smooth monotone functions while keeping the
   bisection guarantee. *)
let bisect ~f ~lo ~hi ~tol ~max_iter =
  let flo = f lo and fhi = f hi in
  if not (opposite_signs flo fhi) then
    invalid_arg "Bracket.bisect: endpoints do not straddle zero";
  let rec loop lo hi flo fhi k =
    let width = hi -. lo in
    let scale =
      Float.max Float.min_float (Float.max (Float.abs lo) (Float.abs hi))
    in
    if width <= tol *. scale || k >= max_iter then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      let secant =
        if fhi <> flo then lo -. (flo *. (hi -. lo) /. (fhi -. flo)) else mid
      in
      let x =
        if secant > lo +. (0.01 *. width) && secant < hi -. (0.01 *. width)
        then secant
        else mid
      in
      let fx = f x in
      if fx = 0.0 then x
      else if opposite_signs flo fx then loop lo x flo fx (k + 1)
      else loop x hi fx fhi (k + 1)
  in
  if flo = 0.0 then lo else if fhi = 0.0 then hi else loop lo hi flo fhi 0

let find_root ~f ~lo ~hi ~tol =
  match expand_bracket ~f ~lo ~hi ~max_expansions:60 with
  | None -> No_sign_change (lo, hi)
  | Some (lo, hi) -> Root (bisect ~f ~lo ~hi ~tol ~max_iter:200)
