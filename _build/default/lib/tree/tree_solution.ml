type repeater = {
  edge : int;
  offset : float;
  width : float;
}

type t = repeater list

let empty = []

let compare_position a b =
  match compare a.edge b.edge with
  | 0 -> Float.compare a.offset b.offset
  | c -> c

let create triples =
  let repeaters =
    List.map
      (fun (edge, offset, width) ->
        if width <= 0.0 then
          invalid_arg "Tree_solution.create: width must be positive";
        if offset < 0.0 then
          invalid_arg "Tree_solution.create: negative offset";
        { edge; offset; width })
      triples
  in
  let sorted = List.sort compare_position repeaters in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.edge = b.edge && a.offset = b.offset then
          invalid_arg "Tree_solution.create: duplicate repeater position";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let repeaters t = t
let count = List.length
let total_width t = List.fold_left (fun acc r -> acc +. r.width) 0.0 t
let widths t = List.map (fun r -> r.width) t
let on_edge t edge = List.filter (fun r -> r.edge = edge) t

let legal tree t =
  List.for_all
    (fun r ->
      r.edge > 0
      && r.edge < Tree.node_count tree
      && Tree.offset_legal tree ~edge:r.edge r.offset)
    t

let with_widths t widths =
  if Array.length widths <> List.length t then
    invalid_arg "Tree_solution.with_widths: length mismatch";
  List.mapi (fun i r -> { r with width = widths.(i) }) t

let equal a b =
  List.equal
    (fun x y -> x.edge = y.edge && x.offset = y.offset && x.width = y.width)
    a b

let pp ppf t =
  let pp_rep ppf r =
    Fmt.pf ppf "%gu@%d+%gum" r.width r.edge r.offset
  in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp_rep) t
