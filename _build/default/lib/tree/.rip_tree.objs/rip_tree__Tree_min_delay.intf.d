lib/tree/tree_min_delay.mli: Rip_dp Rip_tech Tree
