lib/tree/tree_delay.mli: Rip_tech Tree Tree_solution
