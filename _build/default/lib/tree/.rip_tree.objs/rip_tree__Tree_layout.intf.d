lib/tree/tree_layout.mli: Rip_tech Tree Tree_solution
