lib/tree/tree_dp.ml: Array Float List Rip_dp Rip_tech Tree Tree_delay Tree_solution
