lib/tree/tree_sizing.mli: Rip_tech Tree Tree_solution
