lib/tree/tree_solution.mli: Fmt Tree
