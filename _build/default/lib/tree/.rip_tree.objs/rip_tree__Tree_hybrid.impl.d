lib/tree/tree_hybrid.ml: Array Printf Rip_dp Rip_tech Tree_dp Tree_min_delay Tree_sizing Tree_solution Unix
