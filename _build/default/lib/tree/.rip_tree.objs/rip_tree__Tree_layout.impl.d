lib/tree/tree_layout.ml: Array Float List Rip_tech Seq Tree Tree_solution
