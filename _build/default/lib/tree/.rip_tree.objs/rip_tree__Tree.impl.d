lib/tree/tree.ml: Array Float Fmt List Printf Rip_net Rip_tech
