lib/tree/tree_dp.mli: Rip_dp Rip_tech Tree Tree_solution
