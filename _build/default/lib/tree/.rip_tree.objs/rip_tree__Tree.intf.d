lib/tree/tree.mli: Fmt Rip_net Rip_tech
