lib/tree/tree_hybrid.mli: Rip_dp Rip_tech Tree Tree_dp Tree_sizing Tree_solution
