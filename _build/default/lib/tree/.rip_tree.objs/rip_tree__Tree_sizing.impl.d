lib/tree/tree_sizing.ml: Array Float Rip_numerics Rip_tech Tree Tree_layout
