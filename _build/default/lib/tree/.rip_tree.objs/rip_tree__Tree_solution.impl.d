lib/tree/tree_solution.ml: Array Float Fmt List Tree
