lib/tree/tree_delay.ml: Array Float Tree_layout Tree_solution
