lib/tree/tree_min_delay.ml: Array Float List Rip_dp Rip_tech Tree
