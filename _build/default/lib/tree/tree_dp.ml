module Repeater_model = Rip_tech.Repeater_model
module Repeater_library = Rip_dp.Repeater_library

type stats = {
  sites : int;
  labels : int;
}

type result = {
  solution : Tree_solution.t;
  total_width : float;
  max_delay : float;
  stats : stats;
}

type label = {
  cap : float;  (* downstream capacitance seen at this point *)
  req : float;  (* required arrival time at this point *)
  width_units : int;  (* total downstream repeater width, milli-u *)
  placements : (int * float * float) list;  (* (edge, offset, width) *)
}

let units_per_u = 1000.0
let width_units w = int_of_float (Float.round (w *. units_per_u))

let uniform_sites tree ~pitch =
  if pitch <= 0.0 then invalid_arg "Tree_dp.uniform_sites: pitch <= 0";
  Array.init (Tree.node_count tree) (fun id ->
      if id = 0 then []
      else
        let node = tree.Tree.nodes.(id) in
        let count = int_of_float (Float.floor (node.Tree.length /. pitch)) in
        List.filter
          (fun offset -> Tree.offset_legal tree ~edge:id offset)
          (List.init count (fun k -> float_of_int (k + 1) *. pitch)))

let around_sites tree ~centers ~radius ~pitch =
  if pitch <= 0.0 then invalid_arg "Tree_dp.around_sites: pitch <= 0";
  if radius < 0 then invalid_arg "Tree_dp.around_sites: negative radius";
  let offsets_for edge =
    List.concat_map
      (fun (r : Tree_solution.repeater) ->
        List.init
          ((2 * radius) + 1)
          (fun k ->
            r.Tree_solution.offset +. (float_of_int (k - radius) *. pitch)))
      (Tree_solution.on_edge centers edge)
  in
  Array.init (Tree.node_count tree) (fun id ->
      if id = 0 then []
      else
        let legal =
          List.filter
            (fun offset -> Tree.offset_legal tree ~edge:id offset)
            (offsets_for id)
        in
        let sorted = List.sort_uniq Float.compare legal in
        let dedup acc x =
          match acc with
          | prev :: _ when x -. prev <= 1e-6 -> acc
          | _ -> x :: acc
        in
        List.rev (List.fold_left dedup [] sorted))

(* 3-d Pareto prune: sort by total width ascending and keep a growing 2-d
   (cap, req) front; a candidate dominated by any lighter-or-equal label
   dies.  The front is kept cap-ascending / req-ascending so dominance is
   one scan segment. *)
let prune labels =
  let arr = Array.of_list labels in
  Array.sort
    (fun a b ->
      match compare a.width_units b.width_units with
      | 0 -> (
          match Float.compare a.cap b.cap with
          | 0 -> Float.compare b.req a.req
          | c -> c)
      | c -> c)
    arr;
  let front = ref [] in
  let kept = ref [] in
  let dominated l =
    List.exists (fun (c, q) -> c <= l.cap && q >= l.req) !front
  in
  Array.iter
    (fun l ->
      if not (dominated l) then begin
        kept := l :: !kept;
        front :=
          (l.cap, l.req)
          :: List.filter (fun (c, q) -> not (c >= l.cap && q <= l.req)) !front
      end)
    arr;
  List.rev !kept

let solve repeater tree ~library ~sites ~budget =
  if Array.length sites <> Tree.node_count tree then
    invalid_arg "Tree_dp.solve: sites array size mismatch";
  let co = repeater.Repeater_model.co in
  let intrinsic = Repeater_model.intrinsic_delay repeater in
  let lib = Repeater_library.to_array library in
  let total_sites = ref 0 in
  let total_labels = ref 0 in
  let wire_extend node length l =
    if length <= 0.0 then l
    else
      let wire_c = length *. node.Tree.capacitance_per_um in
      let wire_r = length *. node.Tree.resistance_per_um in
      {
        l with
        cap = l.cap +. wire_c;
        req = l.req -. (wire_r *. ((0.5 *. wire_c) +. l.cap));
      }
  in
  let buffer_options edge offset l =
    Array.to_list
      (Array.map
         (fun w ->
           {
             cap = co *. w;
             req =
               l.req -. intrinsic
               -. (Repeater_model.output_resistance repeater w *. l.cap);
             width_units = l.width_units + width_units w;
             placements = (edge, offset, w) :: l.placements;
           })
         lib)
  in
  let viable l = l.req >= 0.0 in
  let merge_two a b =
    List.concat_map
      (fun la ->
        List.filter_map
          (fun lb ->
            let merged =
              {
                cap = la.cap +. lb.cap;
                req = Float.min la.req lb.req;
                width_units = la.width_units + lb.width_units;
                placements = la.placements @ lb.placements;
              }
            in
            if viable merged then Some merged else None)
          b)
      a
  in
  (* Labels at the top (parent end) of node v's edge. *)
  let rec labels_up v =
    let node = tree.Tree.nodes.(v) in
    let base =
      if node.Tree.children = [] then
        let sink =
          List.find (fun s -> s.Tree.node = v) tree.Tree.sinks
        in
        [ { cap = co *. sink.Tree.load_width; req = budget; width_units = 0;
            placements = [] } ]
      else
        match node.Tree.children with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc child -> prune (merge_two acc (labels_up child)))
              (labels_up first) rest
    in
    (* Walk the edge from the node end toward the parent end, visiting
       candidate sites by descending offset. *)
    let site_offsets = List.rev sites.(v) in
    total_sites := !total_sites + List.length site_offsets;
    let labels, top_boundary =
      List.fold_left
        (fun (labels, boundary) offset ->
          let carried =
            List.filter viable
              (List.map (wire_extend node (boundary -. offset)) labels)
          in
          let with_buffers =
            carried
            @ List.concat_map (buffer_options v offset) carried
          in
          let pruned = prune (List.filter viable with_buffers) in
          total_labels := !total_labels + List.length pruned;
          (pruned, offset))
        (base, node.Tree.length) site_offsets
    in
    prune (List.filter viable (List.map (wire_extend node top_boundary) labels))
  in
  let root = tree.Tree.nodes.(0) in
  let at_root =
    match root.Tree.children with
    | [] -> invalid_arg "Tree_dp.solve: empty tree"
    | first :: rest ->
        List.fold_left
          (fun acc child -> prune (merge_two acc (labels_up child)))
          (labels_up first) rest
  in
  let driver_r =
    Repeater_model.output_resistance repeater tree.Tree.driver_width
  in
  let feasible =
    List.filter
      (fun l -> l.req -. intrinsic -. (driver_r *. l.cap) >= 0.0)
      at_root
  in
  match feasible with
  | [] -> None
  | labels ->
      let best =
        List.fold_left
          (fun acc l ->
            if l.width_units < acc.width_units then l
            else if l.width_units = acc.width_units && l.req > acc.req then l
            else acc)
          (List.hd labels) (List.tl labels)
      in
      let solution = Tree_solution.create best.placements in
      Some
        {
          solution;
          total_width = Tree_solution.total_width solution;
          max_delay = Tree_delay.max_delay repeater tree solution;
          stats = { sites = !total_sites; labels = !total_labels };
        }
