(** Elmore delays of a repeated tree (convenience wrapper over
    {!Tree_layout}). *)

val sink_delays :
  Rip_tech.Repeater_model.t -> Tree.t -> Tree_solution.t -> float array
(** Source-to-sink Elmore delay per sink, in the order of
    [tree.Tree.sinks]. *)

val max_delay :
  Rip_tech.Repeater_model.t -> Tree.t -> Tree_solution.t -> float
(** The tree's delay: the worst sink. *)

val meets_budget :
  Rip_tech.Repeater_model.t -> Tree.t -> Tree_solution.t -> budget:float ->
  bool
(** Worst sink within [budget], with a 1 ppm relative tolerance. *)
