(** The hybrid scheme extended to trees — the paper's announced future
    work ("we are currently extending our hybrid scheme to the design of
    low-power interconnect trees"), assembled from the same three
    ingredients as two-pin RIP:

    {ol
    {- a coarse tree DP ({!Tree_dp}) over the 80u library and 200 um
       uniform sites;}
    {- continuous Lagrangian sizing at the coarse locations
       ({!Tree_sizing}) — the analytical stage (the published REFINE's
       location moves are specific to chains; on trees the sizing alone
       supplies the width information line 3 needs);}
    {- a refined library (sized widths snapped to the 10u grid) and a
       refined location set (slots around the coarse locations), searched
       by a final tree DP.}} *)

type config = {
  coarse_library : Rip_dp.Repeater_library.t;
  coarse_pitch : float;
  refined_granularity : float;
  refined_radius : int;
  refined_pitch : float;
  min_width : float;
  max_width : float;
}

val default_config : config
(** The paper's Section 6 values, as in {!Rip_core.Config}. *)

type report = {
  solution : Tree_solution.t;
  total_width : float;
  max_delay : float;
  runtime_seconds : float;
  coarse : Tree_dp.result option;
  sizing : Tree_sizing.result option;
  final : Tree_dp.result option;
}

val solve :
  ?config:config -> Rip_tech.Process.t -> Tree.t -> budget:float ->
  (report, string) result
(** Power-minimal tree repeater insertion with every sink within
    [budget]. *)

val tau_min : Rip_tech.Process.t -> Tree.t -> float
(** Minimum worst-sink delay over the reference design space (min-delay
    labels on a fine grid), anchoring tree timing targets. *)
