module Repeater_model = Rip_tech.Repeater_model

type kind =
  | Root_gate
  | Repeater_gate of int
  | Sink_load of int
  | Junction

type point = {
  parent : int;
  length : float;
  resistance_per_um : float;
  capacitance_per_um : float;
  kind : kind;
}

type t = {
  tree : Tree.t;
  solution : Tree_solution.t;
  points : point array;
  children : int list array;
  repeater_count : int;
  sink_points : (int * int) list;
}

let expand tree solution =
  let sinks = Array.of_list tree.Tree.sinks in
  let repeaters = Array.of_list (Tree_solution.repeaters solution) in
  let buffer = ref [] in
  let count = ref 0 in
  let push point =
    buffer := point :: !buffer;
    incr count;
    !count - 1
  in
  let sink_points = ref [] in
  let root =
    push { parent = -1; length = 0.0; resistance_per_um = 1.0;
           capacitance_per_um = 1.0; kind = Root_gate }
  in
  (* Splice each edge's repeaters (ascending offset), ending at the node's
     own point (junction or sink). *)
  let rec visit_node tree_node parent_point =
    let node = tree.Tree.nodes.(tree_node) in
    let on_edge =
      List.filter
        (fun i -> repeaters.(i).Tree_solution.edge = tree_node)
        (List.init (Array.length repeaters) (fun i -> i))
    in
    let last_point, last_offset =
      List.fold_left
        (fun (pp, prev_offset) i ->
          let r = repeaters.(i) in
          let p =
            push
              { parent = pp;
                length = r.Tree_solution.offset -. prev_offset;
                resistance_per_um = node.Tree.resistance_per_um;
                capacitance_per_um = node.Tree.capacitance_per_um;
                kind = Repeater_gate i }
          in
          (p, r.Tree_solution.offset))
        (parent_point, 0.0) on_edge
    in
    let kind =
      if node.Tree.children = [] then begin
        let sink_index =
          match
            Array.to_seq sinks
            |> Seq.mapi (fun i s -> (i, s))
            |> Seq.find (fun (_, s) -> s.Tree.node = tree_node)
          with
          | Some (i, _) -> i
          | None -> invalid_arg "Tree_layout.expand: leaf without sink"
        in
        Sink_load sink_index
      end
      else Junction
    in
    let self =
      push
        { parent = last_point;
          length = node.Tree.length -. last_offset;
          resistance_per_um = node.Tree.resistance_per_um;
          capacitance_per_um = node.Tree.capacitance_per_um;
          kind }
    in
    (match kind with
    | Sink_load i -> sink_points := (i, self) :: !sink_points
    | Root_gate | Repeater_gate _ | Junction -> ());
    List.iter (fun child -> visit_node child self) node.Tree.children
  in
  List.iter
    (fun child -> visit_node child root)
    tree.Tree.nodes.(0).Tree.children;
  let points = Array.of_list (List.rev !buffer) in
  let children = Array.make (Array.length points) [] in
  Array.iteri
    (fun i p ->
      if p.parent >= 0 then children.(p.parent) <- i :: children.(p.parent))
    points;
  { tree; solution; points; children; repeater_count = Array.length repeaters;
    sink_points = !sink_points }

let gate_width layout widths point =
  match layout.points.(point).kind with
  | Root_gate -> layout.tree.Tree.driver_width
  | Repeater_gate i -> widths.(i)
  | Sink_load _ | Junction ->
      invalid_arg "Tree_layout.gate_width: not a gate"

(* Capacitance visible to the stage at-and-below point q (stops at gate
   inputs, which decouple their subtrees). *)
let rec down_cap repeater layout widths sinks q =
  let point = layout.points.(q) in
  match point.kind with
  | Repeater_gate i -> Repeater_model.input_capacitance repeater widths.(i)
  | Sink_load s ->
      Repeater_model.input_capacitance repeater
        sinks.(s).Tree.load_width
  | Root_gate | Junction ->
      List.fold_left
        (fun acc child ->
          let piece = layout.points.(child) in
          acc
          +. (piece.length *. piece.capacitance_per_um)
          +. down_cap repeater layout widths sinks child)
        0.0 layout.children.(q)

let sink_delays repeater layout ~widths =
  if Array.length widths <> layout.repeater_count then
    invalid_arg "Tree_layout.sink_delays: wrong width count";
  let sinks = Array.of_list layout.tree.Tree.sinks in
  let delays = Array.make (Array.length sinks) Float.nan in
  (* Evaluate one stage: DFS from the gate, accumulating the distributed
     wire delay; recurse into downstream gates with their arrival time. *)
  let rec eval_gate gate arrival =
    let w = gate_width layout widths gate in
    let stage_cap =
      List.fold_left
        (fun acc child ->
          let piece = layout.points.(child) in
          acc
          +. (piece.length *. piece.capacitance_per_um)
          +. down_cap repeater layout widths sinks child)
        0.0 layout.children.(gate)
    in
    let base =
      arrival
      +. Repeater_model.intrinsic_delay repeater
      +. (Repeater_model.output_resistance repeater w *. stage_cap)
    in
    let rec walk q acc =
      let piece = layout.points.(q) in
      let wire_c = piece.length *. piece.capacitance_per_um in
      let wire_r = piece.length *. piece.resistance_per_um in
      let below = down_cap repeater layout widths sinks q in
      let acc = acc +. (wire_r *. ((0.5 *. wire_c) +. below)) in
      match piece.kind with
      | Repeater_gate _ -> eval_gate q (base +. acc)
      | Sink_load s -> delays.(s) <- base +. acc
      | Junction | Root_gate -> List.iter (fun r -> walk r acc) layout.children.(q)
    in
    List.iter (fun q -> walk q 0.0) layout.children.(gate)
  in
  eval_gate 0 0.0;
  delays

let max_sink_delay repeater layout ~widths =
  Array.fold_left Float.max Float.neg_infinity
    (sink_delays repeater layout ~widths)

let repeater_points layout =
  let points = Array.make layout.repeater_count (-1) in
  Array.iteri
    (fun q p ->
      match p.kind with
      | Repeater_gate i -> points.(i) <- q
      | Root_gate | Sink_load _ | Junction -> ())
    layout.points;
  points

let rec parent_gate layout q =
  let p = layout.points.(q).parent in
  if p < 0 then 0
  else
    match layout.points.(p).kind with
    | Root_gate | Repeater_gate _ -> p
    | Sink_load _ | Junction -> parent_gate layout p

let stage_capacitance repeater layout ~widths ~gate =
  let sinks = Array.of_list layout.tree.Tree.sinks in
  List.fold_left
    (fun acc child ->
      let piece = layout.points.(child) in
      acc
      +. (piece.length *. piece.capacitance_per_um)
      +. down_cap repeater layout widths sinks child)
    0.0 layout.children.(gate)
