(** Routed interconnect trees — the substrate for the paper's announced
    extension ("we are currently extending our hybrid scheme to the design
    of low-power interconnect trees") and for the tree formulations of the
    van Ginneken [11] / Lillis [14] DPs it builds on.

    A tree is a rooted set of nodes; every non-root node carries the wire
    edge from its parent (length, per-um RC, forbidden ranges).  The driver
    sits at the root; every leaf is a sink with a receiving-gate width.
    Positions on an edge are offsets in um from the parent end. *)

type node = {
  id : int;
  parent : int;  (** -1 for the root *)
  length : float;  (** edge from the parent, um; 0 for the root *)
  resistance_per_um : float;
  capacitance_per_um : float;
  zones : (float * float) list;
      (** blocked open offset ranges on the edge, normalized *)
  children : int list;
}

type sink = {
  node : int;
  load_width : float;  (** receiving gate width, u *)
}

type t = private {
  name : string;
  nodes : node array;  (** indexed by id; node 0 is the root *)
  driver_width : float;
  sinks : sink list;  (** one per leaf, by construction *)
}

(** {1 Construction} *)

type builder

val builder : ?name:string -> driver_width:float -> unit -> builder

val add_edge :
  builder -> parent:int -> ?zones:(float * float) list ->
  length:float -> resistance_per_um:float -> capacitance_per_um:float ->
  unit -> int
(** Attach a wire edge below [parent] (0 is the root) and return the new
    node's id.
    @raise Invalid_argument on an unknown parent, non-positive RC/length,
    or a zone outside [0, length]. *)

val add_layer_edge :
  builder -> parent:int -> ?zones:(float * float) list ->
  Rip_tech.Layer.t -> length:float -> int
(** {!add_edge} with the RC of a process layer. *)

val set_sink : builder -> node:int -> load_width:float -> unit
(** Declare the leaf's receiving gate.
    @raise Invalid_argument on an unknown node. *)

val build : builder -> t
(** Freeze.  @raise Invalid_argument when the root has no edge, a leaf has
    no sink declaration, or a sink sits on an internal node. *)

(** {1 Queries} *)

val node_count : t -> int
val sink_count : t -> int
val is_leaf : t -> int -> bool

val total_wire_length : t -> float
val total_wire_capacitance : t -> float

val path_to_root : t -> int -> int list
(** Node ids from the given node up to and including the root. *)

val offset_legal : t -> edge:int -> float -> bool
(** True when the offset lies strictly inside the edge and outside every
    forbidden range (endpoints of ranges are legal, matching two-pin
    zones). *)

val chain_of_net : Rip_net.Net.t -> t
(** Embed a two-pin net as a single-path tree (each segment one edge); the
    degenerate case used to cross-check the tree algorithms against the
    chain ones. *)

val pp : t Fmt.t
