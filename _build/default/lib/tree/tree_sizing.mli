(** Continuous repeater sizing on a tree with fixed locations — the tree
    generalisation of the paper's width solver (Eqs. (5) and (8)).

    With per-sink Lagrange weights [lambda_s], the stationarity condition
    for repeater [i] driven by gate [p] becomes

    [w_i = sqrt (Rs C_i W_i / (1 + Co ((Rs / w_p) W_p + WR_i)))]

    where [C_i] is the stage capacitance of [i], [W_i] (resp. [W_p]) the
    summed weight of sinks below [i] (resp. [p]), and [WR_i] the
    weight-scaled wire resistance from [p] to [i] — on a chain with a
    single sink this is exactly Eq. (8) with [lambda] the sink weight.
    Inner Gauss–Seidel sweeps solve the widths for fixed weights; an outer
    loop rebalances per-sink weights multiplicatively toward equalised
    criticality and brackets a global weight scale so the worst sink lands
    on the budget (Eq. (5)).

    This is the analytical stage of the hybrid scheme's tree extension
    (the paper's announced future work; see DESIGN.md). *)

type result = {
  widths : float array;  (** by the solution's repeater order *)
  total_width : float;
  max_delay : float;  (** equals the budget at convergence *)
  sink_weights : float array;  (** final lambda_s, scaled *)
  outer_iterations : int;
}

val solve :
  Rip_tech.Repeater_model.t -> Tree.t -> placements:Tree_solution.t ->
  budget:float -> result option
(** [None] when even the fastest continuous sizing at these locations
    misses the budget at some sink, or when there are no repeaters and the
    bare tree misses it. *)

val min_delay_widths :
  Rip_tech.Repeater_model.t -> Tree.t -> placements:Tree_solution.t ->
  float array
(** The weight -> infinity limit: fastest continuous sizing for the fixed
    locations (used for the feasibility bound). *)
