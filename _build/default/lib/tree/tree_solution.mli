(** Repeater assignments on a tree: each repeater sits on an edge at an
    offset from the parent end. *)

type repeater = {
  edge : int;  (** node id whose parent edge carries the repeater *)
  offset : float;  (** um from the parent end, strictly inside the edge *)
  width : float;  (** u, strictly positive *)
}

type t = private repeater list
(** Sorted by (edge, offset); offsets unique per edge. *)

val empty : t

val create : (int * float * float) list -> t
(** From [(edge, offset, width)] triples.
    @raise Invalid_argument on non-positive width, negative offset, or two
    repeaters at the same point. *)

val repeaters : t -> repeater list
val count : t -> int
val total_width : t -> float
val widths : t -> float list

val on_edge : t -> int -> repeater list
(** Repeaters on the given edge, by ascending offset. *)

val legal : Tree.t -> t -> bool
(** Every repeater strictly inside its edge and outside forbidden ranges. *)

val with_widths : t -> float array -> t
(** Replace widths in order (the order of {!repeaters}).
    @raise Invalid_argument on length mismatch. *)

val equal : t -> t -> bool
val pp : t Fmt.t
