module Repeater_model = Rip_tech.Repeater_model
module Repeater_library = Rip_dp.Repeater_library

type label = {
  cap : float;
  req : float;  (* required time relative to a zero deadline at sinks *)
}

(* 2-d Pareto: keep the (cap ascending, req ascending) front. *)
let prune labels =
  let arr = Array.of_list labels in
  Array.sort
    (fun a b ->
      match Float.compare a.cap b.cap with
      | 0 -> Float.compare b.req a.req
      | c -> c)
    arr;
  let kept = ref [] in
  let best = ref Float.neg_infinity in
  Array.iter
    (fun l ->
      if l.req > !best then begin
        kept := l :: !kept;
        best := l.req
      end)
    arr;
  List.rev !kept

let tau_min repeater tree ~library ~sites =
  let co = repeater.Repeater_model.co in
  let intrinsic = Repeater_model.intrinsic_delay repeater in
  let lib = Repeater_library.to_array library in
  let wire_extend node length l =
    if length <= 0.0 then l
    else
      let wire_c = length *. node.Tree.capacitance_per_um in
      let wire_r = length *. node.Tree.resistance_per_um in
      { cap = l.cap +. wire_c;
        req = l.req -. (wire_r *. ((0.5 *. wire_c) +. l.cap)) }
  in
  let buffer_options l =
    Array.to_list
      (Array.map
         (fun w ->
           { cap = co *. w;
             req =
               l.req -. intrinsic
               -. (Repeater_model.output_resistance repeater w *. l.cap) })
         lib)
  in
  let merge_two a b =
    List.concat_map
      (fun la ->
        List.map
          (fun lb ->
            { cap = la.cap +. lb.cap; req = Float.min la.req lb.req })
          b)
      a
  in
  let rec labels_up v =
    let node = tree.Tree.nodes.(v) in
    let base =
      if node.Tree.children = [] then
        let sink = List.find (fun s -> s.Tree.node = v) tree.Tree.sinks in
        [ { cap = co *. sink.Tree.load_width; req = 0.0 } ]
      else
        match node.Tree.children with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc child -> prune (merge_two acc (labels_up child)))
              (labels_up first) rest
    in
    let labels, top =
      List.fold_left
        (fun (labels, boundary) offset ->
          let carried =
            List.map (wire_extend node (boundary -. offset)) labels
          in
          (prune (carried @ List.concat_map buffer_options carried), offset))
        (base, node.Tree.length)
        (List.rev sites.(v))
    in
    prune (List.map (wire_extend node top) labels)
  in
  let at_root =
    match tree.Tree.nodes.(0).Tree.children with
    | [] -> invalid_arg "Tree_min_delay: empty tree"
    | first :: rest ->
        List.fold_left
          (fun acc child -> prune (merge_two acc (labels_up child)))
          (labels_up first) rest
  in
  let driver_r =
    Repeater_model.output_resistance repeater tree.Tree.driver_width
  in
  let best =
    List.fold_left
      (fun acc l -> Float.max acc (l.req -. intrinsic -. (driver_r *. l.cap)))
      Float.neg_infinity at_root
  in
  -.best
