let sink_delays repeater tree solution =
  let layout = Tree_layout.expand tree solution in
  let widths =
    Array.of_list (Tree_solution.widths solution)
  in
  Tree_layout.sink_delays repeater layout ~widths

let max_delay repeater tree solution =
  Array.fold_left Float.max Float.neg_infinity
    (sink_delays repeater tree solution)

let meets_budget repeater tree solution ~budget =
  max_delay repeater tree solution <= budget *. (1.0 +. 1e-6)
