(** Expanded point tree: the tree with repeaters spliced into their edges.

    Both the tree Elmore evaluator and the continuous sizing solver work on
    this structure; its geometry is fixed once built, so sizing can vary
    repeater widths without rebuilding. *)

type kind =
  | Root_gate  (** the driver *)
  | Repeater_gate of int  (** index into the solution's repeater order *)
  | Sink_load of int  (** index into the tree's sink list *)
  | Junction

type point = {
  parent : int;  (** point index; -1 for the root point *)
  length : float;  (** wire piece from the parent point, um *)
  resistance_per_um : float;
  capacitance_per_um : float;
  kind : kind;
}

type t = {
  tree : Tree.t;
  solution : Tree_solution.t;
  points : point array;  (** topological (parent before child) order *)
  children : int list array;
  repeater_count : int;
  sink_points : (int * int) list;  (** (sink index, point index) *)
}

val expand : Tree.t -> Tree_solution.t -> t

val sink_delays :
  Rip_tech.Repeater_model.t -> t -> widths:float array -> float array
(** Elmore delay from the driver to each sink (indexed like
    [tree.sinks]), with repeater widths taken from [widths] (indexed by
    repeater order).  Matches {!Rip_elmore.Delay.total} on chain trees.
    @raise Invalid_argument when [widths] has the wrong length. *)

val max_sink_delay :
  Rip_tech.Repeater_model.t -> t -> widths:float array -> float

val repeater_points : t -> int array
(** Point index of each repeater gate, indexed by repeater order. *)

val parent_gate : t -> int -> int
(** Nearest gate point strictly above the given point (the root gate for
    top-level points). *)

val stage_capacitance :
  Rip_tech.Repeater_model.t -> t -> widths:float array -> gate:int -> float
(** Total capacitance the gate at the given point drives: its stage's wire
    plus the input capacitance of the gates/sinks bounding the stage. *)

