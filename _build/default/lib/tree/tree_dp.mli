(** Power-minimal repeater insertion on trees under a per-sink delay
    budget — the tree form of the Lillis/Cheng/Lin DP [14] built on van
    Ginneken's bottom-up label propagation [11].

    Labels are [(downstream capacitance, required time, total width)]
    triples propagated from the sinks to the driver: wires lower the
    required time by their Elmore contribution, a repeater option resets
    the downstream capacitance to its input capacitance at the cost of its
    stage delay, and branch merges sum capacitances and widths while
    keeping the tightest required time.  Three-way dominance pruning and
    eager deletion of labels with negative slack keep the sets small.

    On a chain tree this reduces exactly to {!Rip_dp.Power_dp} (the test
    suite certifies the equivalence). *)

type stats = {
  sites : int;  (** candidate sites over all edges *)
  labels : int;  (** labels surviving pruning, summed over steps *)
}

type result = {
  solution : Tree_solution.t;
  total_width : float;
  max_delay : float;  (** worst sink Elmore delay of [solution] *)
  stats : stats;
}

val uniform_sites : Tree.t -> pitch:float -> float list array
(** Per-edge candidate offsets at the given pitch, forbidden ranges
    excluded (index 0, the root, is empty). *)

val around_sites :
  Tree.t -> centers:Tree_solution.t -> radius:int -> pitch:float ->
  float list array
(** Offsets within [radius] slots of each placed repeater, zone-clipped:
    the refined location set of the hybrid scheme. *)

val solve :
  Rip_tech.Repeater_model.t -> Tree.t ->
  library:Rip_dp.Repeater_library.t -> sites:float list array ->
  budget:float -> result option
(** [None] when no assignment meets the budget at every sink. *)
