(** Van Ginneken's classic minimum-delay buffering on trees [11]: 2-d
    [(capacitance, required-time)] label propagation, here used to anchor
    tree timing targets at the minimum achievable worst-sink delay. *)

val tau_min :
  Rip_tech.Repeater_model.t -> Tree.t ->
  library:Rip_dp.Repeater_library.t -> sites:float list array -> float
(** Minimum worst-sink Elmore delay over the given design space. *)
