(* Fanout-tree demo: the hybrid scheme on a multi-sink interconnect tree
   (the paper's announced extension).  A 4-sink distribution tree with a
   macro blocking part of one branch is repeated for minimal power, and
   per-sink slacks are reported.

     dune exec examples/fanout_tree.exe *)

module Tree = Rip_tree.Tree
module Tree_solution = Rip_tree.Tree_solution
module Tree_delay = Rip_tree.Tree_delay
module Tree_hybrid = Rip_tree.Tree_hybrid

let process = Rip_tech.Process.default_180nm

let build_tree () =
  let b = Tree.builder ~name:"fanout4" ~driver_width:20.0 () in
  let trunk = Tree.add_layer_edge b ~parent:0 Rip_tech.Layer.metal5 ~length:2800.0 in
  let north = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:2100.0 in
  let south = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:1900.0 in
  let nw = Tree.add_layer_edge b ~parent:north Rip_tech.Layer.metal5 ~length:1700.0 in
  let ne =
    (* A macro blocks the middle of the north-east branch. *)
    Tree.add_layer_edge b ~parent:north ~zones:[ (500.0, 1400.0) ]
      Rip_tech.Layer.metal5 ~length:2000.0
  in
  let sw = Tree.add_layer_edge b ~parent:south Rip_tech.Layer.metal4 ~length:1500.0 in
  let se = Tree.add_layer_edge b ~parent:south Rip_tech.Layer.metal4 ~length:2400.0 in
  Tree.set_sink b ~node:nw ~load_width:40.0;
  Tree.set_sink b ~node:ne ~load_width:35.0;
  Tree.set_sink b ~node:sw ~load_width:50.0;
  Tree.set_sink b ~node:se ~load_width:45.0;
  Tree.build b

let () =
  let tree = build_tree () in
  let tau_min = Tree_hybrid.tau_min process tree in
  let budget = 1.25 *. tau_min in
  Printf.printf "%s: %.0f um of wire, %d sinks; tau_min %.1f ps, budget %.1f ps\n\n"
    tree.Tree.name (Tree.total_wire_length tree) (Tree.sink_count tree)
    (tau_min *. 1e12) (budget *. 1e12);
  match Tree_hybrid.solve process tree ~budget with
  | Error e -> Printf.printf "infeasible: %s\n" e
  | Ok r ->
      Printf.printf "%d repeaters, total width %.0fu (%.1f ms)\n"
        (Tree_solution.count r.Tree_hybrid.solution)
        r.Tree_hybrid.total_width
        (r.Tree_hybrid.runtime_seconds *. 1e3);
      List.iter
        (fun (rep : Tree_solution.repeater) ->
          Printf.printf "  edge %d @ %6.0f um : %4.0fu\n"
            rep.Tree_solution.edge rep.Tree_solution.offset
            rep.Tree_solution.width)
        (Tree_solution.repeaters r.Tree_hybrid.solution);
      (match r.Tree_hybrid.coarse with
      | Some c ->
          Printf.printf "coarse DP alone would need %.0fu (%.1f%% more)\n"
            c.Rip_tree.Tree_dp.total_width
            (100.0
            *. (c.Rip_tree.Tree_dp.total_width -. r.Tree_hybrid.total_width)
            /. r.Tree_hybrid.total_width)
      | None -> ());
      let delays =
        Tree_delay.sink_delays process.Rip_tech.Process.repeater tree
          r.Tree_hybrid.solution
      in
      Printf.printf "\nper-sink timing:\n";
      List.iteri
        (fun i (s : Tree.sink) ->
          Printf.printf "  sink at node %d: %.1f ps (slack %+.1f ps)\n"
            s.Tree.node (delays.(i) *. 1e12)
            ((budget -. delays.(i)) *. 1e12))
        tree.Tree.sinks
