examples/macro_blockage.mli:
