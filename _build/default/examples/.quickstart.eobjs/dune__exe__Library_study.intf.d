examples/library_study.mli:
