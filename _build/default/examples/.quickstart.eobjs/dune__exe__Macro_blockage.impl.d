examples/macro_blockage.ml: List Printf Rip_core Rip_elmore Rip_net Rip_tech
