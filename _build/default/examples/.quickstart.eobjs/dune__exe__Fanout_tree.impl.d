examples/fanout_tree.ml: Array List Printf Rip_tech Rip_tree
