examples/fanout_tree.mli:
