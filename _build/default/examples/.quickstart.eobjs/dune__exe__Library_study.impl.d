examples/library_study.ml: Fmt List Printf Rip_core Rip_dp Rip_net Rip_tech Rip_workload Unix
