examples/budget_sweep.ml: List Printf Rip_core Rip_dp Rip_elmore Rip_net Rip_tech Rip_workload
