examples/delay_models.mli:
