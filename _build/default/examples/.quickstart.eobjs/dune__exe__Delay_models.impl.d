examples/delay_models.ml: List Printf Rip_core Rip_elmore Rip_net Rip_tech Rip_workload
