examples/quickstart.mli:
