examples/budget_sweep.mli:
